"""Tests for ECO-style netlist deltas (:class:`repro.netlist.NetlistDelta`)."""

import pytest

from repro.netlist import Circuit, NetlistDelta, Resistor, SubcktInstance
from repro.netlist.devices import Capacitor


def _flat_circuit() -> Circuit:
    circuit = Circuit("FLAT", ports=["a", "c"])
    circuit.add(Resistor("R1", {"P": "a", "N": "b"}, resistance=1e3))
    circuit.add(Resistor("R2", {"P": "b", "N": "c"}, resistance=2e3))
    circuit.add(Capacitor("C1", {"P": "c", "N": "VSS"}, capacitance=1e-15))
    return circuit


class TestValidation:
    def test_rejects_subckt_instance_additions(self):
        with pytest.raises(ValueError, match="subckt instance"):
            NetlistDelta(add_devices=[SubcktInstance("X1", {}, subckt_name="INV",
                                                     connections=["a"])])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            NetlistDelta(remove_devices=["R1", "R1"])
        with pytest.raises(ValueError, match="duplicate"):
            NetlistDelta(add_devices=[Resistor("R9", {"P": "a", "N": "b"}),
                                      Resistor("R9", {"P": "b", "N": "c"})])

    def test_empty_and_counts(self):
        assert NetlistDelta().is_empty
        delta = NetlistDelta(add_devices=[Resistor("R9", {"P": "a", "N": "b"})],
                             remove_devices=["R1"])
        assert not delta.is_empty
        assert delta.num_changes == 2


class TestApply:
    def test_apply_preserves_survivor_order_and_appends_adds(self):
        delta = NetlistDelta(add_devices=[Resistor("R9", {"P": "c", "N": "d"})],
                             remove_devices=["R1"])
        result = delta.apply(_flat_circuit())
        assert [d.name for d in result.devices] == ["R2", "C1", "R9"]
        assert "d" in result.nets and "b" in result.nets

    def test_apply_does_not_mutate_the_input(self):
        circuit = _flat_circuit()
        NetlistDelta(remove_devices=["R1"]).apply(circuit)
        assert [d.name for d in circuit.devices] == ["R1", "R2", "C1"]

    def test_apply_unknown_removal_raises(self):
        with pytest.raises(KeyError, match="RMISSING"):
            NetlistDelta(remove_devices=["RMISSING"]).apply(_flat_circuit())

    def test_apply_colliding_addition_raises(self):
        delta = NetlistDelta(add_devices=[Resistor("R2", {"P": "a", "N": "b"})])
        with pytest.raises(ValueError, match="already exist"):
            delta.apply(_flat_circuit())

    def test_edit_is_remove_plus_add_of_the_same_name(self):
        delta = NetlistDelta(
            add_devices=[Resistor("R2", {"P": "b", "N": "c"}, resistance=9e3)],
            remove_devices=["R2"])
        result = delta.apply(_flat_circuit())
        (r2,) = [d for d in result.devices if d.name == "R2"]
        assert r2.resistance == 9e3


class TestTouchedNets:
    def test_covers_removed_and_added_device_nets(self):
        delta = NetlistDelta(add_devices=[Resistor("R9", {"P": "x", "N": "y"})],
                             remove_devices=["R1"])
        assert delta.touched_nets(_flat_circuit()) == {"a", "b", "x", "y"}


class TestBetween:
    def test_between_recovers_adds_removes_and_edits(self):
        old = _flat_circuit()
        new = _flat_circuit()
        new.devices = [d for d in new.devices if d.name != "C1"]  # removal
        new.add(Resistor("R9", {"P": "c", "N": "d"}))             # addition
        new.devices[0].resistance = 5e3                           # edit of R1
        delta = NetlistDelta.between(old, new)
        assert sorted(delta.remove_devices) == ["C1", "R1"]
        assert sorted(d.name for d in delta.add_devices) == ["R1", "R9"]
        replayed = delta.apply(old)
        assert {d.name for d in replayed.devices} == {"R1", "R2", "R9"}
        (r1,) = [d for d in replayed.devices if d.name == "R1"]
        assert r1.resistance == 5e3

    def test_between_identical_revisions_is_empty(self):
        assert NetlistDelta.between(_flat_circuit(), _flat_circuit()).is_empty

    def test_between_flattens_hierarchy_first(self):
        from repro.netlist import Subckt

        def hierarchical(extra: bool) -> Circuit:
            circuit = Circuit("H", ports=["in"])
            cell = Subckt("CELL", ports=["p"])
            cell.add(Resistor("R1", {"P": "p", "N": "mid"}))
            if extra:
                cell.add(Capacitor("C1", {"P": "mid", "N": "VSS"},
                                   capacitance=2e-15))
            circuit.define_subckt(cell)
            circuit.add(SubcktInstance("X1", {}, subckt_name="CELL",
                                       connections=["in"]))
            return circuit

        delta = NetlistDelta.between(hierarchical(False), hierarchical(True))
        assert delta.remove_devices == []
        assert [d.name for d in delta.add_devices] == ["X1/C1"]
