"""Tests for the simplified-DSPF (SPF) reader and writer."""

import pytest

from repro.netlist import extract_parasitics, parse_spf, place_circuit, ssram, write_spf
from repro.netlist.parasitics import NET, PIN, CouplingCap, ParasiticReport


@pytest.fixture(scope="module")
def report():
    circuit = ssram(rows=3, cols=3).flatten()
    placement = place_circuit(circuit, rng=0)
    return extract_parasitics(placement, rng=1)


class TestRoundTrip:
    def test_counts_preserved(self, report):
        parsed = parse_spf(write_spf(report))
        assert parsed.design == report.design
        assert len(parsed.couplings) == len(report.couplings)
        assert len(parsed.net_ground_caps) == len(report.net_ground_caps)
        assert len(parsed.pin_ground_caps) == len(report.pin_ground_caps)

    def test_values_preserved_within_tolerance(self, report):
        parsed = parse_spf(write_spf(report))
        for net, value in report.net_ground_caps.items():
            assert parsed.net_ground_caps[net] == pytest.approx(value, rel=1e-4)
        original = sorted(report.couplings, key=lambda c: c.key())
        recovered = sorted(parsed.couplings, key=lambda c: c.key())
        for a, b in zip(original, recovered):
            assert a.key() == b.key()
            assert b.value == pytest.approx(a.value, rel=1e-4)

    def test_kinds_preserved(self, report):
        parsed = parse_spf(write_spf(report))
        assert parsed.coupling_by_kind() == report.coupling_by_kind()


class TestParsing:
    def test_minimal_document(self):
        text = (
            "*|DSPF 1.0\n"
            "*|DESIGN demo\n"
            "Cg1 net_a 0 1.5f\n"
            "Cg2 M1:D 0 0.3f\n"
            "Cc1 net_a net_b 2f\n"
            "Cc2 M1:D net_b 0.1f\n"
        )
        report = parse_spf(text)
        assert report.design == "demo"
        assert report.net_ground_caps["net_a"] == pytest.approx(1.5e-15)
        assert report.pin_ground_caps[("M1", "D")] == pytest.approx(0.3e-15)
        assert report.couplings[0].link_kind == "net-net"
        assert report.couplings[1].kind_a == PIN and report.couplings[1].kind_b == NET

    def test_malformed_statement_raises(self):
        with pytest.raises(ValueError):
            parse_spf("Cg1 net_a 0\n")

    def test_unknown_statement_raises(self):
        with pytest.raises(ValueError):
            parse_spf("R1 a b 1k\n")

    def test_write_empty_report(self):
        report = ParasiticReport(design="empty")
        text = write_spf(report)
        parsed = parse_spf(text)
        assert parsed.design == "empty"
        assert not parsed.couplings

    def test_roundtrip_single_coupling(self):
        report = ParasiticReport(design="one")
        report.couplings.append(CouplingCap(NET, "a", NET, "b", 3.2e-16))
        parsed = parse_spf(write_spf(report))
        assert parsed.couplings[0].value == pytest.approx(3.2e-16, rel=1e-4)
