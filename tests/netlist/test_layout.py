"""Tests for the procedural placement model."""

import numpy as np
import pytest

from repro.netlist import TECH_28NM, build_design, place_circuit, ssram
from repro.netlist.layout import NetBox


class TestNetBox:
    def test_hpwl(self):
        box = NetBox("n", 0.0, 0.0, 2.0, 3.0, num_pins=2)
        assert box.hpwl == pytest.approx(5.0)
        assert box.center == (1.0, 1.5)

    def test_overlap_length(self):
        a = NetBox("a", 0.0, 0.0, 2.0, 1.0, 2)
        b = NetBox("b", 1.0, 0.5, 3.0, 2.0, 2)
        assert a.overlap_length(b) == pytest.approx(1.0 + 0.5)

    def test_distance_zero_when_overlapping(self):
        a = NetBox("a", 0.0, 0.0, 2.0, 2.0, 2)
        b = NetBox("b", 1.0, 1.0, 3.0, 3.0, 2)
        assert a.distance(b) == 0.0

    def test_distance_positive_when_separated(self):
        a = NetBox("a", 0.0, 0.0, 1.0, 1.0, 2)
        b = NetBox("b", 4.0, 5.0, 5.0, 6.0, 2)
        assert a.distance(b) == pytest.approx(np.hypot(3.0, 4.0))


class TestPlacement:
    @pytest.fixture(scope="class")
    def placement(self):
        circuit = ssram(rows=4, cols=4).flatten()
        return place_circuit(circuit, rng=0)

    def test_every_device_is_placed(self, placement):
        assert set(placement.device_positions) == {d.name for d in placement.circuit.devices}

    def test_every_pin_is_placed(self, placement):
        expected = sum(len(d.terminals) for d in placement.circuit.devices)
        assert len(placement.pin_locations) == expected

    def test_every_net_has_a_box(self, placement):
        nets_with_pins = {pin.net for pin in placement.pin_locations.values()}
        assert set(placement.net_boxes) == nets_with_pins

    def test_signal_nets_exclude_power(self, placement):
        assert "VDD" not in placement.signal_nets
        assert "VSS" not in placement.signal_nets

    def test_area_is_positive(self, placement):
        assert placement.area > 0

    def test_net_box_contains_its_pins(self, placement):
        for net, box in placement.net_boxes.items():
            for pin in placement.pins_of_net(net):
                assert box.x_min - 1e-12 <= pin.x <= box.x_max + 1e-12
                assert box.y_min - 1e-12 <= pin.y <= box.y_max + 1e-12

    def test_connected_devices_are_placed_nearby(self, placement):
        """The BFS placement should keep connected devices closer than random pairs."""
        circuit = placement.circuit
        rng = np.random.default_rng(0)
        positions = placement.device_positions
        net_devices = circuit.net_devices()
        connected_distances = []
        for net, devices in net_devices.items():
            if circuit.is_power_rail(net) or len(devices) < 2:
                continue
            a, b = devices[0], devices[1]
            pa, pb = positions[a.name], positions[b.name]
            connected_distances.append(np.hypot(pa[0] - pb[0], pa[1] - pb[1]))
        names = list(positions)
        random_distances = []
        for _ in range(len(connected_distances)):
            a, b = rng.choice(names, size=2, replace=False)
            pa, pb = positions[a], positions[b]
            random_distances.append(np.hypot(pa[0] - pb[0], pa[1] - pb[1]))
        assert np.median(connected_distances) < np.median(random_distances)

    def test_placement_is_reproducible_with_same_seed(self):
        circuit = build_design("TIMING_CONTROL", scale=0.3).flatten()
        a = place_circuit(circuit, rng=42)
        b = place_circuit(circuit, rng=42)
        for name in a.device_positions:
            assert a.device_positions[name] == pytest.approx(b.device_positions[name])

    def test_hierarchical_input_is_flattened(self):
        placement = place_circuit(build_design("TIMING_CONTROL", scale=0.3), rng=0)
        assert placement.circuit.is_flat

    def test_technology_defaults(self, placement):
        assert placement.technology is TECH_28NM
