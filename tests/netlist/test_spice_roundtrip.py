"""Property-based SPICE roundtrip tests (seeded random trials, stdlib only).

Property: for any circuit the generators below can produce,
``parse_spice(write_spice(circuit))`` must describe the *same* circuit —
same flattened devices (names, terminals, parameters up to the 6-significant-
digit SI formatting), and the identical heterogeneous graph
(:func:`netlist_to_graph`): node names, node types and edge lists, byte for
byte.

The random generator draws hierarchical circuits — MOS/R/C/D primitives,
sub-circuit definitions with 1-4 ports, nested instances, power-rail
connections — from a seeded ``numpy`` RNG, so the 50 trials are fully
deterministic and a failure reproduces from its seed alone (no new
dependencies, unlike a hypothesis-based harness).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import netlist_to_graph
from repro.netlist import Circuit, parse_spice, write_spice
from repro.netlist.circuit import Subckt
from repro.netlist.devices import Capacitor, Diode, Mosfet, Resistor, SubcktInstance
from repro.netlist.spice import format_si_value, parse_si_value

NUM_TRIALS = 50
POWER_NETS = ["VDD", "VSS"]


# --------------------------------------------------------------------------- #
# Random circuit generation
# --------------------------------------------------------------------------- #
def _random_device(rng: np.random.Generator, index: int, nets: list[str]):
    """One random primitive with nets drawn (with replacement) from ``nets``."""

    def net() -> str:
        return nets[int(rng.integers(len(nets)))]

    kind = int(rng.integers(4))
    if kind == 0:
        return Mosfet(
            name=f"M{index}",
            terminals={"D": net(), "G": net(), "S": net(), "B": net()},
            polarity="pmos" if rng.random() < 0.5 else "nmos",
            width=float(10 ** rng.uniform(-8, -6)),
            length=float(10 ** rng.uniform(-8, -7)),
            multiplier=int(rng.integers(1, 4)),
            fingers=int(rng.integers(1, 5)),
        )
    if kind == 1:
        return Resistor(
            name=f"R{index}",
            terminals={"P": net(), "N": net()},
            resistance=float(10 ** rng.uniform(1, 6)),
            width=float(10 ** rng.uniform(-7, -6)),
            length=float(10 ** rng.uniform(-6, -5)),
            multiplier=int(rng.integers(1, 3)),
        )
    if kind == 2:
        return Capacitor(
            name=f"C{index}",
            terminals={"P": net(), "N": net()},
            capacitance=float(10 ** rng.uniform(-16, -12)),
            width=float(10 ** rng.uniform(-7, -6)),
            length=float(10 ** rng.uniform(-6, -5)),
            fingers=int(rng.integers(1, 6)),
            multiplier=int(rng.integers(1, 3)),
        )
    return Diode(
        name=f"D{index}",
        terminals={"P": net(), "N": net()},
        area=float(10 ** rng.uniform(-13, -11)),
        multiplier=int(rng.integers(1, 3)),
    )


def random_circuit(seed: int) -> Circuit:
    """A random hierarchical circuit: primitives + subckts + nested instances."""
    rng = np.random.default_rng(seed)
    circuit = Circuit(f"RANDOM_{seed}")

    subckt_names: list[str] = []
    for cell_index in range(int(rng.integers(0, 4))):
        ports = [f"p{i}" for i in range(int(rng.integers(1, 5)))]
        internal = [f"int{i}" for i in range(int(rng.integers(0, 4)))]
        cell = Subckt(name=f"CELL{cell_index}", ports=list(ports))
        cell_nets = ports + internal + POWER_NETS
        for device_index in range(int(rng.integers(1, 6))):
            cell.add(_random_device(rng, device_index, cell_nets))
        # Possibly instantiate an earlier cell (no cycles by construction).
        if subckt_names and rng.random() < 0.5:
            child = subckt_names[int(rng.integers(len(subckt_names)))]
            child_ports = circuit.subckts[child].ports
            cell.add(SubcktInstance(
                name=f"X{device_index}_{cell_index}", terminals={},
                subckt_name=child,
                connections=[cell_nets[int(rng.integers(len(cell_nets)))]
                             for _ in child_ports],
            ))
        circuit.define_subckt(cell)
        subckt_names.append(cell.name)

    top_nets = [f"net{i}" for i in range(int(rng.integers(3, 10)))] + POWER_NETS
    for device_index in range(int(rng.integers(2, 9))):
        circuit.add(_random_device(rng, device_index, top_nets))
    for instance_index in range(int(rng.integers(0, len(subckt_names) + 1))):
        cell = subckt_names[int(rng.integers(len(subckt_names)))]
        circuit.add(SubcktInstance(
            name=f"XTOP{instance_index}", terminals={}, subckt_name=cell,
            connections=[top_nets[int(rng.integers(len(top_nets)))]
                         for _ in circuit.subckts[cell].ports],
        ))
    return circuit


# --------------------------------------------------------------------------- #
# Equality helpers
# --------------------------------------------------------------------------- #
def _numeric_fields(device) -> dict[str, float]:
    skip = {"name", "terminals", "polarity", "subckt_name", "connections"}
    return {key: value for key, value in vars(device).items()
            if key not in skip and isinstance(value, (int, float))}


def assert_flat_circuits_equal(original: Circuit, parsed: Circuit) -> None:
    flat_a, flat_b = original.flatten(), parsed.flatten()
    assert len(flat_a.devices) == len(flat_b.devices)
    assert flat_a.nets == flat_b.nets
    for dev_a, dev_b in zip(flat_a.devices, flat_b.devices):
        assert dev_a.name == dev_b.name
        assert type(dev_a) is type(dev_b)
        assert dev_a.terminals == dev_b.terminals
        if isinstance(dev_a, Mosfet):
            assert dev_a.polarity == dev_b.polarity
        for field, value in _numeric_fields(dev_a).items():
            assert getattr(dev_b, field) == pytest.approx(value, rel=1e-5), (
                f"{dev_a.name}.{field}: {value} != {getattr(dev_b, field)}"
            )


def assert_graphs_identical(original: Circuit, parsed: Circuit) -> None:
    graph_a = netlist_to_graph(original, with_stats=True)
    parsed.name = original.name  # parse_spice cannot recover the title comment
    graph_b = netlist_to_graph(parsed, with_stats=True)
    assert graph_a.node_names == graph_b.node_names
    np.testing.assert_array_equal(graph_a.node_types, graph_b.node_types)
    np.testing.assert_array_equal(graph_a.edge_index, graph_b.edge_index)
    np.testing.assert_array_equal(graph_a.edge_types, graph_b.edge_types)
    # X_C statistics depend on device parameters, which roundtrip through the
    # 6-significant-digit SI formatting — equal to float precision, not bytes.
    np.testing.assert_allclose(graph_a.node_stats, graph_b.node_stats, rtol=1e-4)


# --------------------------------------------------------------------------- #
# Properties
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", range(NUM_TRIALS))
def test_write_parse_roundtrip_preserves_circuit_and_graph(seed):
    circuit = random_circuit(seed)
    parsed = parse_spice(write_spice(circuit))
    assert set(parsed.subckts) == set(circuit.subckts)
    assert_flat_circuits_equal(circuit, parsed)
    assert_graphs_identical(circuit, parsed)


@pytest.mark.parametrize("seed", range(0, NUM_TRIALS, 7))
def test_second_roundtrip_is_a_fixed_point(seed):
    """write -> parse -> write must be byte-stable (canonical form)."""
    circuit = random_circuit(seed)
    parsed = parse_spice(write_spice(circuit))
    text_once = write_spice(parsed)
    text_twice = write_spice(parse_spice(text_once))
    assert text_once == text_twice


# --------------------------------------------------------------------------- #
# Flatten aliasing (regression: collisions used to merge nets silently)
# --------------------------------------------------------------------------- #
def _internal_nets(cell: Subckt) -> list[str]:
    """Nets private to ``cell``: not ports, not power rails."""
    nets: set[str] = set()
    for device in cell.devices:
        nets.update(device.terminals.values())
    return sorted(nets - set(cell.ports) - {"VDD", "VSS"})


@pytest.mark.parametrize("seed", range(0, NUM_TRIALS, 3))
def test_flatten_rejects_top_net_aliasing_an_internal_net(seed):
    """Property: a top-level net literally named like the hierarchical name
    of any instance-internal net must make ``flatten`` raise — flattening
    used to silently merge the two electrically distinct nets."""
    rng = np.random.default_rng(seed)
    circuit = random_circuit(seed)
    victims = [
        (instance, net)
        for instance in circuit.instances
        for net in _internal_nets(circuit.subckts[instance.subckt_name])
    ]
    if not victims:
        pytest.skip("this draw produced no instance-internal nets")
    instance, net = victims[int(rng.integers(len(victims)))]
    colliding = f"{instance.name}/{net}"
    circuit.add(Capacitor(name="CALIAS", terminals={"P": colliding, "N": "net0"},
                          capacitance=1e-15))
    with pytest.raises(ValueError, match="alias"):
        circuit.flatten()


def test_flatten_rejects_colliding_scoped_nets_across_nesting_levels():
    """An internal net of a nested instance can also collide with an internal
    net of a sibling subtree; both spellings must be rejected."""
    circuit = Circuit("NEST")
    leaf = Subckt(name="LEAF", ports=["a"])
    leaf.add(Resistor(name="R1", terminals={"P": "a", "N": "mid"}))
    circuit.define_subckt(leaf)
    wrap = Subckt(name="WRAP", ports=["a"])
    # Inside WRAP, instance XI expands to <scope>/XI/mid; the literal net
    # "XI/mid" inside the same WRAP body expands to the identical name.
    wrap.add(SubcktInstance(name="XI", terminals={}, subckt_name="LEAF",
                            connections=["a"]))
    wrap.add(Capacitor(name="C1", terminals={"P": "XI/mid", "N": "a"},
                       capacitance=2e-15))
    circuit.define_subckt(wrap)
    circuit.add(SubcktInstance(name="XW", terminals={}, subckt_name="WRAP",
                               connections=["top"]))
    with pytest.raises(ValueError, match="alias"):
        circuit.flatten()


def test_flatten_rejects_duplicate_instance_names():
    circuit = Circuit("DUP")
    cell = Subckt(name="CELL", ports=["a"])
    cell.add(Resistor(name="R1", terminals={"P": "a", "N": "mid"}))
    circuit.define_subckt(cell)
    for _ in range(2):
        circuit.instances.append(SubcktInstance(
            name="X1", terminals={}, subckt_name="CELL", connections=["top"]))
    with pytest.raises(ValueError, match="duplicate instance name"):
        circuit.flatten()


@pytest.mark.parametrize("seed", range(0, NUM_TRIALS, 5))
def test_si_value_roundtrip(seed):
    """format_si_value -> parse_si_value is the identity up to 6 digits."""
    rng = np.random.default_rng(seed)
    for _ in range(20):
        value = float(10 ** rng.uniform(-18, 12)) * (1 if rng.random() < 0.5 else -1)
        assert parse_si_value(format_si_value(value)) == pytest.approx(value, rel=1e-5)
