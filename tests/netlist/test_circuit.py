"""Tests for Circuit containers, hierarchy flattening and statistics."""

import pytest

from repro.netlist import Circuit, Mosfet, Resistor, Subckt, SubcktInstance


def _inverter_subckt(name="INV"):
    cell = Subckt(name=name, ports=["A", "Y", "VDD", "VSS"])
    cell.add(Mosfet("MP1", {"D": "Y", "G": "A", "S": "VDD", "B": "VDD"}, polarity="pmos"))
    cell.add(Mosfet("MN1", {"D": "Y", "G": "A", "S": "VSS", "B": "VSS"}, polarity="nmos"))
    return cell


class TestCircuitBasics:
    def test_nets_collects_all_names(self):
        circuit = Circuit("top", ports=["in", "out"])
        circuit.add(Resistor("R1", {"P": "in", "N": "out"}))
        assert circuit.nets == ["in", "out"]

    def test_net_devices_mapping(self):
        circuit = Circuit("top")
        r1 = circuit.add(Resistor("R1", {"P": "a", "N": "b"}))
        r2 = circuit.add(Resistor("R2", {"P": "b", "N": "c"}))
        mapping = circuit.net_devices()
        assert mapping["b"] == [r1, r2]
        assert mapping["a"] == [r1]

    def test_duplicate_subckt_definition_raises(self):
        circuit = Circuit("top")
        circuit.define_subckt(_inverter_subckt())
        with pytest.raises(ValueError):
            circuit.define_subckt(_inverter_subckt())

    def test_power_rail_detection(self):
        assert Circuit.is_ground("VSS")
        assert Circuit.is_ground("0")
        assert Circuit.is_supply("vdd")
        assert Circuit.is_power_rail("VDD")
        assert not Circuit.is_power_rail("data0")


class TestFlatten:
    def _hierarchical(self):
        circuit = Circuit("top", ports=["in", "out", "VDD", "VSS"])
        circuit.define_subckt(_inverter_subckt())
        buffer = Subckt(name="BUF", ports=["A", "Y", "VDD", "VSS"])
        buffer.add(SubcktInstance("XI1", {}, subckt_name="INV",
                                  connections=["A", "mid", "VDD", "VSS"]))
        buffer.add(SubcktInstance("XI2", {}, subckt_name="INV",
                                  connections=["mid", "Y", "VDD", "VSS"]))
        circuit.define_subckt(buffer)
        circuit.add(SubcktInstance("XB1", {}, subckt_name="BUF",
                                   connections=["in", "out", "VDD", "VSS"]))
        return circuit

    def test_flatten_counts_devices(self):
        flat = self._hierarchical().flatten()
        assert flat.is_flat
        assert len(flat.devices) == 4  # two inverters, two transistors each

    def test_flatten_uniquifies_names_and_nets(self):
        flat = self._hierarchical().flatten()
        names = {d.name for d in flat.devices}
        assert "XB1/XI1/MP1" in names
        nets = set(flat.nets)
        assert "XB1/mid" in nets          # internal net got a hierarchical name
        assert "in" in nets and "out" in nets  # ports are preserved

    def test_flatten_keeps_global_rails(self):
        flat = self._hierarchical().flatten()
        assert "VDD" in flat.nets and "VSS" in flat.nets
        assert not any(net.endswith("/VDD") for net in flat.nets)

    def test_unknown_subckt_raises(self):
        circuit = Circuit("top")
        circuit.add(SubcktInstance("X1", {}, subckt_name="MISSING", connections=["a"]))
        with pytest.raises(KeyError):
            circuit.flatten()

    def test_port_count_mismatch_raises(self):
        circuit = Circuit("top")
        circuit.define_subckt(_inverter_subckt())
        circuit.add(SubcktInstance("X1", {}, subckt_name="INV", connections=["a", "y"]))
        with pytest.raises(ValueError):
            circuit.flatten()

    def test_stats_of_flattened_circuit(self):
        stats = self._hierarchical().stats()
        assert stats.num_devices == 4
        assert stats.num_mosfets == 4
        assert stats.num_pins == 16
        assert stats.num_resistors == 0
        assert stats.as_dict()["num_devices"] == 4


class TestStatsCaching:
    """Regression: ``stats`` used to re-flatten the full hierarchy per call."""

    @staticmethod
    def _counting(circuit, monkeypatch):
        calls = {"flatten": 0}
        original = Circuit.flatten

        def counted(self, separator="/"):
            calls["flatten"] += 1
            return original(self, separator)

        monkeypatch.setattr(Circuit, "flatten", counted)
        return calls

    def _hierarchical(self):
        circuit = Circuit("top", ports=["in", "out"])
        circuit.define_subckt(_inverter_subckt())
        circuit.add(SubcktInstance("XB1", {}, subckt_name="INV",
                                   connections=["in", "mid", "VDD", "VSS"]))
        circuit.add(SubcktInstance("XB2", {}, subckt_name="INV",
                                   connections=["mid", "out", "VDD", "VSS"]))
        return circuit

    def test_repeated_stats_flatten_once(self, monkeypatch):
        circuit = self._hierarchical()
        calls = self._counting(circuit, monkeypatch)
        first = circuit.stats()
        for _ in range(5):
            assert circuit.stats() is first
        assert calls["flatten"] == 1

    def test_top_level_mutation_invalidates_the_cache(self, monkeypatch):
        circuit = self._hierarchical()
        calls = self._counting(circuit, monkeypatch)
        before = circuit.stats()
        circuit.add(Resistor("R1", {"P": "in", "N": "out"}))
        after = circuit.stats()
        assert calls["flatten"] == 2
        assert after.num_devices == before.num_devices + 1
        assert after.num_resistors == before.num_resistors + 1

    def test_subckt_body_mutation_invalidates_the_cache(self, monkeypatch):
        circuit = self._hierarchical()
        calls = self._counting(circuit, monkeypatch)
        before = circuit.stats()
        # In-place edit of a *definition*: both instances grow a device.
        circuit.subckts["INV"].add(
            Resistor("RLOAD", {"P": "Y", "N": "VSS"}))
        after = circuit.stats()
        assert calls["flatten"] == 2
        assert after.num_devices == before.num_devices + 2

    def test_flat_circuit_stats_do_not_flatten(self, monkeypatch):
        circuit = Circuit("flat")
        circuit.add(Resistor("R1", {"P": "a", "N": "b"}))
        calls = self._counting(circuit, monkeypatch)
        assert circuit.stats().num_devices == 1
        assert calls["flatten"] == 0
