"""Golden-file regression tests for the CLI ``annotate`` / ``report`` output.

The committed files under ``tests/golden/`` pin the *exact* serving output of
a deterministic workload: a tiny untrained-but-seeded pipeline artifact
annotating a fixed SSRAM netlist.  Any unintended change to candidate
generation, inference, report schema or table rendering shows up as a diff
against these files.

Volatile content is normalised before comparison: timings are zeroed and
floats are rounded to 6 significant digits (the artifact's forward pass is
deterministic per platform; the rounding absorbs BLAS last-ulp differences
across machines).

To refresh after an *intended* output change::

    PYTHONPATH=src python -m pytest tests/test_golden.py --update-golden
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.core import CircuitGPSPipeline, ExperimentConfig, build_model
from repro.core.cli import main
from repro.netlist import ssram, write_spice
from repro.utils import seed_all

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
ANNOTATION_GOLDEN = GOLDEN_DIR / "annotate_report.json"
TABLE_GOLDEN = GOLDEN_DIR / "report_table.txt"

PAIRS_ARGS = ["--pairs", "BL0,BL1", "--pairs", "BL0,BLB0", "--pairs", "WL0,WL1"]


# --------------------------------------------------------------------------- #
# Normalisation / comparison helpers
# --------------------------------------------------------------------------- #
def _round_floats(value):
    """Round every float to 6 significant digits, recursively."""
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return float(f"{value:.6g}")
    if isinstance(value, dict):
        return {key: 0.0 if key == "elapsed_seconds" else _round_floats(item)
                for key, item in value.items()}
    if isinstance(value, list):
        return [_round_floats(item) for item in value]
    return value


def _normalized_json(payload: dict) -> str:
    return json.dumps(_round_floats(payload), indent=2, sort_keys=True) + "\n"


def _check_golden(path: pathlib.Path, actual: str, update: bool) -> None:
    if update:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(actual)
        return
    assert path.exists(), (
        f"golden file {path} is missing; create it with --update-golden"
    )
    expected = path.read_text()
    assert actual == expected, (
        f"output differs from golden file {path.name}; if the change is "
        "intended, refresh with: pytest tests/test_golden.py --update-golden"
    )


# --------------------------------------------------------------------------- #
# Deterministic serving workload
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    """A saved deterministic artifact plus the netlist it annotates."""
    root = tmp_path_factory.mktemp("golden_cli")
    seed_all(0)
    config = (
        ExperimentConfig.fast()
        .with_model(dim=16, num_layers=1, pe_hidden=4, dropout=0.0, attention="none")
        .with_data(max_nodes_per_hop=None)  # no hub subsampling: RNG-free inference
    )
    pipeline = CircuitGPSPipeline.from_models(
        config,
        build_model(config, rng=np.random.default_rng(0)),
        heads={("edge_regression", "all"): build_model(config, rng=np.random.default_rng(1))},
    )
    pipeline.save(root / "ckpt")

    circuit = ssram(rows=4, cols=4)
    circuit.name = "GOLDEN_MACRO"
    netlist = root / "golden_macro.sp"
    netlist.write_text(write_spice(circuit))
    return root


def _annotate_json(workdir, tmp_path, extra_args: list[str]) -> dict:
    out = tmp_path / "report.json"
    code = main(["annotate", str(workdir / "ckpt"), str(workdir / "golden_macro.sp"),
                 *PAIRS_ARGS, "--threshold", "0.25", "--json", str(out), *extra_args])
    assert code == 0
    return json.loads(out.read_text())


# --------------------------------------------------------------------------- #
# Golden tests
# --------------------------------------------------------------------------- #
def test_annotate_json_matches_golden(workdir, tmp_path, update_golden, capsys):
    payload = _annotate_json(workdir, tmp_path, [])
    capsys.readouterr()  # swallow the table printout
    _check_golden(ANNOTATION_GOLDEN, _normalized_json(payload), update_golden)


def test_annotate_json_with_workers_matches_same_golden(workdir, tmp_path, capsys):
    """The golden file also pins the determinism contract: workers change nothing."""
    payload = _annotate_json(workdir, tmp_path, ["--workers", "2"])
    capsys.readouterr()
    assert _normalized_json(payload) == ANNOTATION_GOLDEN.read_text()


def test_report_table_matches_golden(update_golden, capsys):
    """``repro report`` rendering of the committed annotation JSON is pinned."""
    code = main(["report", str(ANNOTATION_GOLDEN)])
    assert code == 0
    out = capsys.readouterr().out
    # The title embeds the (machine-dependent) path that was passed in.
    out = out.replace(str(ANNOTATION_GOLDEN), "<ANNOTATION_JSON>")
    _check_golden(TABLE_GOLDEN, out, update_golden)


def test_golden_files_are_committed():
    """Fail loudly (not via fixture skips) if the goldens ever go missing."""
    assert ANNOTATION_GOLDEN.exists() and TABLE_GOLDEN.exists()
