"""Bad: global-state draws and the pre-PR-8 additive seed idiom."""

import numpy as np


def sample(n):
    return np.random.rand(n)


def per_item_rngs(seed, count):
    # The historical bug: seed+i streams collide across base seeds.
    return [np.random.default_rng(seed + i) for i in range(count)]
