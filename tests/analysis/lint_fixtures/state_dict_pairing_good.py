"""Good: round-trip pairs, and the Protocol exemption."""

from typing import Protocol


class MomentumState:
    """Optimizer-like state with a full save/load round-trip."""

    def state_dict(self):
        return {"momentum": 0.9}

    def load_state_dict(self, state):
        self.momentum = state["momentum"]


class Saveable(Protocol):
    """Structural type — exempt from the pairing rule."""

    def state_dict(self):
        ...
