"""Good: every registered component documents itself."""

from repro.api import HEADS, TASKS


@HEADS.register("fixture-head")
class FixtureHead:
    """Identity head used by the lint fixture corpus."""

    def __call__(self, batch):
        return batch


def fixture_task(batch):
    """Identity task used by the lint fixture corpus."""
    return batch


TASKS.register("fixture-task", fixture_task)
