"""Good: module-level callables are picklable across the pool."""

from repro.core.parallel import parallel_map


def double(item):
    return item * 2


class Shifter:
    """Callable object carrying its state explicitly (pickles fine)."""

    def __init__(self, bias):
        self.bias = bias

    def __call__(self, item):
        return item + self.bias


def run(items, bias):
    first = parallel_map(double, items)
    second = parallel_map(Shifter(bias), items)
    return first, second
