"""Good: broad handlers log, re-raise, or stay narrow."""

import logging

logger = logging.getLogger(__name__)


def load(path):
    try:
        return open(path).read()
    except OSError:
        return None


def tick(callbacks):
    for callback in callbacks:
        try:
            callback()
        except Exception as exc:
            logger.warning("callback failed: %s", exc)


def guarded(fn):
    try:
        return fn()
    except Exception:
        logger.exception("fn failed; propagating")
        raise
