"""Bad: float dtype literals outside ``repro.nn.dtypes``."""

import numpy as np


def labels(values):
    return np.array(values, dtype=np.float64)


def wire(values):
    return np.asarray(values).astype(np.dtype("float32"))
