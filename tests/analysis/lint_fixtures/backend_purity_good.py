"""Good: FLOPs dispatched through the active compute backend."""

import numpy as np

from repro.nn.backends import active_backend


def linear(x, w):
    backend = active_backend()
    return backend.matmul(x, w)


def softplus(x):
    backend = active_backend()
    return backend.log(1.0 + backend.exp(x))


def reorder(x, order):
    # Structural numpy ops carry no FLOPs and are fine in hot paths.
    return np.take(x, order, axis=0)
