"""Bad: one-sided serialisation — checkpoints that cannot be restored."""


class MomentumState:
    """Optimizer-like state that can be saved but never loaded back."""

    def state_dict(self):
        return {"momentum": 0.9}
