"""Bad: sampler stages breaking the ``(graph, seeds, *, rng)`` contract."""

from repro.api import SAMPLERS


@SAMPLERS.register("fixture-stage-positional-rng")
class PositionalRngStage:
    """Stage whose rng is positional (the pre-datapipe signature)."""

    def apply(self, graph, seeds, rng):
        return graph, seeds


@SAMPLERS.register("fixture-stage-shuffled")
def fixture_stage(graph, rng, seeds):
    """Function stage with shuffled parameters."""
    return graph, seeds
