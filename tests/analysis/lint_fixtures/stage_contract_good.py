"""Good: stages honouring the uniform contract, plus an exempt factory."""

from repro.api import SAMPLERS


@SAMPLERS.register("fixture-stage-good")
class GoodStage:
    """Stage with the uniform signature."""

    def apply(self, graph, seeds, *, rng):
        return graph, seeds


@SAMPLERS.register("fixture-pipeline-factory")
def fixture_pipeline(hops=2):
    """Factory — no ``graph`` parameter, exempt from the stage contract."""
    return GoodStage()
