"""Bad: raw numpy compute calls in a hot-path module."""

import numpy as np


def linear(x, w):
    return np.matmul(x, w)


def softplus(x):
    return np.log(1.0 + np.exp(x))
