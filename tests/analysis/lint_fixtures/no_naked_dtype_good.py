"""Good: the named dtype-policy constants and coercion helpers."""

import numpy as np

from repro.nn.dtypes import FLOAT32, FLOAT64, as_float


def labels(values):
    return np.array(values, dtype=FLOAT64)


def wire(values):
    return np.asarray(values).astype(FLOAT32)


def features(values):
    return as_float(values)
