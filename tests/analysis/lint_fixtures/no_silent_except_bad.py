"""Bad: broad handlers that swallow failures without a trace."""


def load(path):
    try:
        return open(path).read()
    except Exception:
        return None


def tick(callbacks):
    for callback in callbacks:
        try:
            callback()
        except:  # noqa: E722
            pass
