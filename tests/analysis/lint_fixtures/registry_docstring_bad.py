"""Bad: registered components shipping without docstrings."""

from repro.api import HEADS, TASKS


@HEADS.register("fixture-head")
class FixtureHead:
    def __call__(self, batch):
        return batch


def fixture_task(batch):
    return batch


TASKS.register("fixture-task", fixture_task)
TASKS.register("fixture-lambda", lambda batch: batch)
