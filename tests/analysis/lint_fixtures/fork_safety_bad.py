"""Bad: unpicklable callables crossing the process pool."""

from repro.core.parallel import parallel_map


def run(items, bias):
    def shifted(item):
        return item + bias

    first = parallel_map(shifted, items)
    second = parallel_map(lambda item: item * 2, items)
    return first, second
