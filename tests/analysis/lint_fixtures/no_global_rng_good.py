"""Good: a threaded generator and SeedSequence-spawned per-item seeds."""

import numpy as np

from repro.utils.rng import spawn_seeds


def sample(n, *, rng):
    return rng.random(n)


def per_item_rngs(seed, count):
    return [np.random.default_rng(s) for s in spawn_seeds(seed, count)]
