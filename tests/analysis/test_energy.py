"""Tests for the switching-energy model (Fig. 4 validation)."""

import numpy as np
import pytest

from repro.analysis import design_energy, energy_comparison, net_total_capacitances, switching_energy


class TestSwitchingEnergy:
    def test_formula(self):
        caps = {"a": 1e-15, "b": 3e-15}
        energy = switching_energy(caps, vdd=1.0, activity=0.5)
        assert energy == pytest.approx(0.5 * 1.0 * 0.5 * 4e-15)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            switching_energy({"a": 1e-15}, vdd=0.0)
        with pytest.raises(ValueError):
            switching_energy({"a": 1e-15}, activity=0.0)

    def test_energy_scales_with_vdd_squared(self):
        caps = {"a": 1e-15}
        assert switching_energy(caps, vdd=1.8) == pytest.approx(4 * switching_energy(caps, vdd=0.9))


class TestNetTotals:
    def test_totals_include_ground_and_coupling(self, small_design):
        totals = net_total_capacitances(small_design)
        ground = small_design.parasitics.net_ground_caps
        for net, value in ground.items():
            assert totals[net] >= value

    def test_power_rails_excluded(self, small_design):
        totals = net_total_capacitances(small_design)
        assert "VDD" not in totals and "VSS" not in totals

    def test_override_changes_totals(self, small_design):
        coupling = small_design.parasitics.couplings[0]
        override = {coupling.key(): coupling.value * 100}
        base = net_total_capacitances(small_design)
        bumped = net_total_capacitances(small_design, override)
        assert sum(bumped.values()) > sum(base.values())


class TestDesignEnergy:
    def test_positive_energy(self, small_design):
        assert design_energy(small_design) > 0

    def test_exact_predictions_give_zero_error(self, small_design):
        override = {c.key(): c.value for c in small_design.parasitics.couplings}
        comparison = energy_comparison(small_design, override)
        assert comparison["ape"] == pytest.approx(0.0, abs=1e-12)
        assert comparison["norm_energy_pred"] == pytest.approx(1.0)

    def test_underestimated_couplings_reduce_energy(self, small_design):
        override = {c.key(): 0.0 for c in small_design.parasitics.couplings}
        comparison = energy_comparison(small_design, override)
        assert comparison["energy_pred_j"] < comparison["energy_true_j"]
        assert 0 < comparison["ape"] <= 1.0

    def test_comparison_reports_design_name(self, small_design):
        comparison = energy_comparison(small_design, {})
        assert comparison["design"] == small_design.name
