"""Tests for table formatting helpers."""

import pytest

from repro.analysis import format_metric, format_table, print_table


class TestFormatMetric:
    def test_float_precision(self):
        assert format_metric(0.12345) == "0.123"
        assert format_metric(0.12345, precision=2) == "0.12"

    def test_small_values_use_scientific(self):
        assert "e" in format_metric(3.2e-16)

    def test_integers_and_strings_passthrough(self):
        assert format_metric(42) == "42"
        assert format_metric("GatedGCN") == "GatedGCN"
        assert format_metric(None) == "-"
        assert format_metric(True) == "True"


class TestFormatTable:
    ROWS = [
        {"method": "ParaGraph", "acc": 0.768, "auc": 0.87},
        {"method": "CircuitGPS", "acc": 0.972, "auc": 0.992},
    ]

    def test_contains_all_cells(self):
        text = format_table(self.ROWS, title="Table V")
        assert "Table V" in text
        assert "CircuitGPS" in text and "0.972" in text

    def test_column_selection_and_order(self):
        text = format_table(self.ROWS, columns=["acc", "method"])
        header = text.splitlines()[0]
        assert header.index("acc") < header.index("method")
        assert "auc" not in header

    def test_missing_values_render_dash(self):
        text = format_table([{"a": 1.0}, {"a": 2.0, "b": 3.0}], columns=["a", "b"])
        assert "-" in text

    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"

    def test_print_table_writes_to_stdout(self, capsys):
        print_table(self.ROWS, title="demo")
        captured = capsys.readouterr()
        assert "demo" in captured.out
