"""Fixture-driven tests of the built-in ``repro lint`` rules.

Each rule has a ``<rule>_bad.py`` / ``<rule>_good.py`` pair under
``lint_fixtures/`` reproducing the historical bug pattern the rule guards
against (and the sanctioned idiom that must stay clean).  Fixtures are
linted as *text* under a synthetic path, so path-scoped rules fire without
the fixtures living inside ``src/``.  Findings are filtered to the rule
under test — a fixture demonstrating one contract violation is allowed to
be imperfect under another rule.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.lint import LINT_RULES, lint_source

FIXTURES = pathlib.Path(__file__).parent / "lint_fixtures"

#: rule name -> (synthetic lint path, expected finding count in the bad twin)
CASES = {
    "no-global-rng": ("src/repro/core/sampler_helpers.py", 2),
    "no-naked-dtype": ("src/repro/core/data_helpers.py", 2),
    "backend-purity": ("src/repro/nn/functional.py", 3),
    "fork-safety": ("src/repro/core/data_helpers.py", 2),
    "no-silent-except": ("src/repro/core/serve_helpers.py", 2),
    "registry-docstring": ("src/repro/models/heads_plugin.py", 3),
    "stage-contract": ("src/repro/graph/datapipe_plugin.py", 2),
    "state-dict-pairing": ("src/repro/nn/optim_plugin.py", 1),
}


def findings_for(rule: str, stem: str, path: str):
    source = (FIXTURES / f"{stem}.py").read_text(encoding="utf-8")
    return [f for f in lint_source(source, path) if f.rule == rule]


def test_every_builtin_rule_has_a_fixture_pair():
    assert set(CASES) == set(LINT_RULES.names())
    for rule in CASES:
        stem = rule.replace("-", "_")
        assert (FIXTURES / f"{stem}_bad.py").is_file()
        assert (FIXTURES / f"{stem}_good.py").is_file()


@pytest.mark.parametrize("rule", sorted(CASES))
def test_bad_fixture_fires(rule):
    path, expected = CASES[rule]
    found = findings_for(rule, rule.replace("-", "_") + "_bad", path)
    assert len(found) == expected, [f.message for f in found]
    for finding in found:
        assert finding.rule == rule
        assert finding.line >= 1
        assert finding.message


@pytest.mark.parametrize("rule", sorted(CASES))
def test_good_fixture_is_clean(rule):
    path, _ = CASES[rule]
    found = findings_for(rule, rule.replace("-", "_") + "_good", path)
    assert found == [], [f.message for f in found]


# --------------------------------------------------------------------------- #
# The acceptance-pinned historical idioms
# --------------------------------------------------------------------------- #
def test_pre_pr8_additive_seed_idiom_fires():
    source = (
        "import numpy as np\n"
        "def streams(seed, n):\n"
        "    return [np.random.default_rng(seed + i) for i in range(n)]\n"
    )
    found = [f for f in lint_source(source, "src/repro/core/x.py")
             if f.rule == "no-global-rng"]
    assert len(found) == 1
    assert "spawn_seeds" in found[0].message


def test_closure_into_parallel_map_fires():
    source = (
        "from repro.core.parallel import parallel_map\n"
        "def run(items, k):\n"
        "    def scale(item):\n"
        "        return item * k\n"
        "    return parallel_map(scale, items)\n"
    )
    found = [f for f in lint_source(source, "src/repro/core/x.py")
             if f.rule == "fork-safety"]
    assert len(found) == 1
    assert "scale" in found[0].message


def test_rng_accessor_home_is_exempt():
    source = "import numpy as np\n_GLOBAL = np.random.default_rng(0)\n"
    assert lint_source(source, "src/repro/utils/rng.py") == []
    assert [f.rule for f in lint_source(source, "src/repro/core/x.py")] == [
        "no-global-rng"
    ]


def test_backend_purity_only_applies_to_hot_modules():
    source = "import numpy as np\ndef f(a, b):\n    return np.matmul(a, b)\n"
    assert [f.rule for f in lint_source(source, "src/repro/nn/tensor.py")] == [
        "backend-purity"
    ]
    # legacy.py is the deliberately-numpy parity oracle: out of scope.
    assert lint_source(source, "src/repro/nn/legacy.py") == []


def test_sanctioned_backend_dispatch_is_clean():
    source = (
        "from .backends import active_backend\n"
        "def linear(x, w):\n"
        "    backend = active_backend()\n"
        "    return backend.matmul(x, w)\n"
    )
    assert lint_source(source, "src/repro/nn/functional.py") == []
