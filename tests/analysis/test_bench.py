"""Tests for the machine-readable benchmark records (:mod:`repro.analysis.bench`)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.bench import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_VERSION,
    BenchRecorder,
    compare_benchmarks,
    load_bench,
    peak_rss_mb,
)


class TestRecorder:
    def test_payload_is_schema_stamped_and_sorted(self):
        rec = BenchRecorder("serve")
        rec.record("zeta", 1.0, unit="s", direction="lower")
        rec.record("alpha", 2.0, unit="x")
        rec.add_meta(preset="fast")
        payload = rec.payload()
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["version"] == BENCH_SCHEMA_VERSION
        assert payload["area"] == "serve"
        assert list(payload["metrics"]) == ["alpha", "zeta"]
        assert payload["meta"] == {"preset": "fast"}
        assert payload["environment"]["peak_rss_mb"] > 0

    def test_write_and_load_round_trip(self, tmp_path):
        rec = BenchRecorder("train_ops", out_dir=tmp_path)
        rec.record("step_s", 0.5, unit="s", direction="lower", steps=3)
        path = rec.write()
        assert path.name == "BENCH_train_ops.json"
        payload = load_bench(path)
        assert payload["metrics"]["step_s"] == {
            "value": 0.5, "unit": "s", "direction": "lower", "steps": 3}

    def test_rejects_bad_area_and_direction(self, tmp_path):
        with pytest.raises(ValueError, match="slug"):
            BenchRecorder("has spaces")
        rec = BenchRecorder("ok")
        with pytest.raises(ValueError, match="direction"):
            rec.record("x", 1.0, direction="sideways")
        with pytest.raises(ValueError, match="output directory"):
            rec.write()

    def test_load_rejects_foreign_and_stale_files(self, tmp_path):
        foreign = tmp_path / "foreign.json"
        foreign.write_text(json.dumps({"schema": "not-bench"}))
        with pytest.raises(ValueError, match="not a"):
            load_bench(foreign)
        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps({"schema": BENCH_SCHEMA, "version": 99,
                                     "metrics": {}}))
        with pytest.raises(ValueError, match="version"):
            load_bench(stale)
        no_metrics = tmp_path / "none.json"
        no_metrics.write_text(json.dumps({"schema": BENCH_SCHEMA,
                                          "version": BENCH_SCHEMA_VERSION}))
        with pytest.raises(ValueError, match="metrics"):
            load_bench(no_metrics)

    def test_peak_rss_positive(self):
        assert peak_rss_mb() > 1.0


def _payload(**metrics):
    rec = BenchRecorder("area")
    for name, (value, direction) in metrics.items():
        rec.record(name, value, direction=direction)
    return rec.payload()


class TestCompare:
    def test_direction_aware_statuses(self):
        old = _payload(tps=(100.0, "higher"), latency=(1.0, "lower"),
                       steady=(5.0, "higher"))
        new = _payload(tps=(80.0, "higher"), latency=(0.5, "lower"),
                       steady=(5.2, "higher"))
        rows = {r["metric"]: r for r in compare_benchmarks(old, new)}
        assert rows["tps"]["status"] == "regressed"
        assert rows["latency"]["status"] == "improved"
        assert rows["steady"]["status"] == "ok"
        assert rows["tps"]["change"] == pytest.approx(-0.2)

    def test_regressions_sort_first_by_magnitude(self):
        old = _payload(a=(1.0, "lower"), b=(1.0, "lower"), c=(1.0, "higher"))
        new = _payload(a=(1.2, "lower"), b=(2.0, "lower"), c=(1.0, "higher"))
        rows = compare_benchmarks(old, new)
        assert [r["metric"] for r in rows[:2]] == ["b", "a"]

    def test_one_sided_metrics_reported_not_failed(self):
        rows = compare_benchmarks(_payload(gone=(1.0, "lower")),
                                  _payload(fresh=(1.0, "lower")))
        statuses = {r["metric"]: r["status"] for r in rows}
        assert statuses == {"gone": "old-only", "fresh": "new-only"}

    def test_zero_old_value_does_not_divide_by_zero(self):
        rows = compare_benchmarks(_payload(x=(0.0, "higher")),
                                  _payload(x=(5.0, "higher")))
        assert rows[0]["status"] == "ok"

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare_benchmarks(_payload(x=(1.0, "higher")),
                               _payload(x=(1.0, "higher")), threshold=-0.1)
