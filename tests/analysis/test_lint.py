"""Framework tests of the ``repro lint`` engine (suppression, baseline,
walker, output, CLI) plus the meta-test that the committed tree is clean."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.analysis.lint import (
    LINT_RULES,
    Finding,
    format_findings,
    iter_python_files,
    lint_source,
    load_baseline,
    report_to_json,
    resolve_rules,
    run_lint,
    write_baseline,
)
from repro.api import list_components
from repro.core.cli import main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

DIRTY = "import numpy as np\nx = np.random.rand(4)\n"


def rules_of(source: str, path: str = "src/repro/core/x.py") -> list[str]:
    return [f.rule for f in lint_source(source, path)]


# --------------------------------------------------------------------------- #
# Suppression grammar
# --------------------------------------------------------------------------- #
def test_same_line_suppression():
    source = (
        "import numpy as np\n"
        "x = np.random.rand(4)  "
        "# repro-lint: disable=no-global-rng -- fixture noise\n"
    )
    assert rules_of(source) == []


def test_standalone_line_above_suppression():
    source = (
        "import numpy as np\n"
        "# repro-lint: disable=no-global-rng -- fixture noise\n"
        "x = np.random.rand(4)\n"
    )
    assert rules_of(source) == []


def test_standalone_suppression_does_not_leak_past_its_line():
    source = (
        "import numpy as np\n"
        "# repro-lint: disable=no-global-rng -- fixture noise\n"
        "x = np.random.rand(4)\n"
        "y = np.random.rand(4)\n"
    )
    assert rules_of(source) == ["no-global-rng"]


def test_file_wide_suppression():
    source = (
        "# repro-lint: disable-file=no-global-rng -- legacy shim module\n"
        "import numpy as np\n"
        "x = np.random.rand(4)\n"
        "y = np.random.rand(4)\n"
    )
    assert rules_of(source) == []


def test_disable_all_suppression():
    source = (
        "import numpy as np\n"
        "x = np.random.rand(4)  # repro-lint: disable=all -- generated file\n"
    )
    assert rules_of(source) == []


def test_unjustified_suppression_is_itself_a_finding():
    source = (
        "import numpy as np\n"
        "x = np.random.rand(4)  # repro-lint: disable=no-global-rng\n"
    )
    # The unjustified directive does not take effect (the original finding
    # survives) and is additionally reported itself.
    assert sorted(rules_of(source)) == ["lint-suppression", "no-global-rng"]


def test_malformed_directive_is_reported():
    source = "# repro-lint: silence everything please\nx = 1\n"
    assert rules_of(source) == ["lint-suppression"]


def test_directive_inside_string_literal_is_ignored():
    source = 's = "# repro-lint: disable=no-global-rng"\n'
    assert rules_of(source) == []


# --------------------------------------------------------------------------- #
# Baseline round-trip
# --------------------------------------------------------------------------- #
def test_baseline_round_trip(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(DIRTY)
    report = run_lint([target], root=tmp_path)
    assert len(report.findings) == 1 and not report.ok

    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, report.findings)
    baseline = load_baseline(baseline_file)

    again = run_lint([target], baseline=baseline, root=tmp_path)
    assert again.ok
    assert [f.rule for f in again.grandfathered] == ["no-global-rng"]


def test_baseline_is_count_aware(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(DIRTY)
    baseline = load_baseline_of(target, tmp_path)
    # A *second* occurrence of a grandfathered pattern is still new.
    target.write_text(DIRTY + "y = np.random.rand(4)\n")
    report = run_lint([target], baseline=baseline, root=tmp_path)
    assert len(report.grandfathered) == 1
    assert len(report.findings) == 1


def load_baseline_of(target, root):
    report = run_lint([target], root=root)
    baseline_file = root / "baseline.json"
    write_baseline(baseline_file, report.findings)
    return load_baseline(baseline_file)


def test_fingerprint_survives_line_drift(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(DIRTY)
    baseline = load_baseline_of(target, tmp_path)
    # Unrelated edits shift the finding down the file; it stays grandfathered.
    target.write_text("import numpy as np\n\n\nZ = 1\nx = np.random.rand(4)\n")
    report = run_lint([target], baseline=baseline, root=tmp_path)
    assert report.ok
    assert len(report.grandfathered) == 1


def test_load_baseline_rejects_foreign_json(tmp_path):
    bogus = tmp_path / "baseline.json"
    bogus.write_text(json.dumps({"not": "a baseline"}))
    with pytest.raises(ValueError, match="fingerprints"):
        load_baseline(bogus)


# --------------------------------------------------------------------------- #
# Walker, parse errors, output
# --------------------------------------------------------------------------- #
def test_walker_skips_pycache_and_hidden(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "ok.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text("x = 1\n")
    (tmp_path / ".hidden").mkdir()
    (tmp_path / ".hidden" / "secret.py").write_text("x = 1\n")
    files = iter_python_files([tmp_path])
    assert [f.name for f in files] == ["ok.py"]


def test_walker_raises_on_missing_path(tmp_path):
    with pytest.raises(FileNotFoundError):
        iter_python_files([tmp_path / "nope"])


def test_syntax_error_becomes_parse_error_finding():
    findings = lint_source("def broken(:\n", "src/repro/core/x.py")
    assert [f.rule for f in findings] == ["parse-error"]


def test_format_findings_orders_by_severity():
    findings = [
        Finding(rule="registry-docstring", path="b.py", line=1,
                message="warn", severity="warning"),
        Finding(rule="no-global-rng", path="a.py", line=2, message="err"),
    ]
    lines = format_findings(findings).splitlines()
    assert lines[0] == "a.py:2:1: error: err [no-global-rng]"
    assert lines[1] == "b.py:1:1: warning: warn [registry-docstring]"


def test_report_json_shape(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(DIRTY)
    payload = report_to_json(run_lint([target], root=tmp_path))
    assert payload["version"] == 1
    assert payload["files_checked"] == 1
    assert payload["summary"]["new"] == 1
    assert payload["summary"]["by_rule"] == {"no-global-rng": 1}
    (finding,) = payload["findings"]
    assert finding["rule"] == "no-global-rng"
    assert finding["fingerprint"]
    assert finding["source"] == "x = np.random.rand(4)"


def test_rule_subset_selection():
    rules = resolve_rules(["no-naked-dtype"])
    assert [rule.name for rule in rules] == ["no-naked-dtype"]
    source = "import numpy as np\nx = np.random.rand(4)\n"
    assert lint_source(source, "src/repro/core/x.py", rules) == []


# --------------------------------------------------------------------------- #
# Registry integration and CLI
# --------------------------------------------------------------------------- #
def test_lint_rules_registry_is_listed():
    families = list_components()
    assert set(families["lint_rules"]) == set(LINT_RULES.names())
    assert len(families["lint_rules"]) == 8


def test_cli_exit_codes(tmp_path, capsys):
    dirty = tmp_path / "mod.py"
    dirty.write_text(DIRTY)
    clean = tmp_path / "ok.py"
    clean.write_text("x = 1\n")

    assert main(["lint", str(clean)]) == 0
    assert main(["lint", str(dirty)]) == 1
    assert main(["lint", str(tmp_path / "missing")]) == 2
    assert main(["lint", str(dirty), "--update-baseline"]) == 2
    capsys.readouterr()

    baseline = tmp_path / "baseline.json"
    assert main(["lint", str(dirty), "--baseline", str(baseline),
                 "--update-baseline"]) == 0
    assert main(["lint", str(dirty), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "grandfathered" in out


def test_cli_json_output(tmp_path, capsys):
    dirty = tmp_path / "mod.py"
    dirty.write_text(DIRTY)
    assert main(["lint", str(dirty), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["by_rule"] == {"no-global-rng": 1}


# --------------------------------------------------------------------------- #
# Meta-test: the committed tree is clean
# --------------------------------------------------------------------------- #
def test_committed_tree_is_lint_clean():
    report = run_lint([REPO_ROOT / "src"], root=REPO_ROOT)
    assert report.files_checked > 50
    assert report.findings == [], format_findings(report.findings)


def test_committed_baseline_is_empty():
    baseline = load_baseline(REPO_ROOT / ".repro-lint-baseline.json")
    assert baseline == {}
