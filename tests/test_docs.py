"""The committed API reference must match the code (docs satellite gate)."""

import importlib.util
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _load_generator():
    spec = importlib.util.spec_from_file_location(
        "gen_api_docs", REPO_ROOT / "scripts" / "gen_api_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_api_docs_are_up_to_date():
    generator = _load_generator()
    rendered, _missing = generator.render()
    committed = (REPO_ROOT / "docs" / "api.md").read_text()
    assert rendered == committed, (
        "docs/api.md is stale; regenerate with: python scripts/gen_api_docs.py"
    )


def test_exported_symbols_have_docstrings():
    generator = _load_generator()
    _rendered, missing = generator.render()
    assert not missing, f"exported symbols without docstrings: {missing}"


def test_architecture_doc_mentions_every_benchmark():
    text = (REPO_ROOT / "docs" / "architecture.md").read_text()
    for bench in sorted((REPO_ROOT / "benchmarks").glob("test_*.py")):
        assert bench.name in text, (
            f"docs/architecture.md does not map {bench.name} to a paper artefact"
        )
