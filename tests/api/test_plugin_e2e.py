"""Acceptance test for the registry-driven API redesign.

A brand-new task *and* a brand-new backbone are registered from this single
file, using only ``repro.api`` imports — no edits to ``repro/core`` or
``repro/models`` — and driven through the full workflow:

    register -> ExperimentSpec -> fit -> save -> load -> annotate

with the spec round-tripped through JSON along the way.  This is the
"one-file plugin" contract of ``docs/extending.md``.
"""

import numpy as np
import pytest

from repro.api import (
    BACKBONES,
    TASKS,
    ExperimentSpec,
    GraphPropertyTask,
    annotate,
    evaluate,
    fit,
    load,
    nn,
)


# --------------------------------------------------------------------------- #
# The plugin: one custom backbone + one custom task
# --------------------------------------------------------------------------- #
class TinyMLP(nn.Module):
    """A deliberately small registered backbone: embed, pool, two MLP heads.

    Implements the backbone protocol the stack relies on: ``forward(batch,
    task=...)``, ``config()`` (rebuild kwargs for checkpoints), ``pe_kind``
    and a constructor accepting ``rng``.
    """

    def __init__(self, dim: int = 12, pe_kind: str = "none", rng=None):
        super().__init__()
        self.dim = int(dim)
        self.pe_kind = pe_kind
        self.embed = nn.Embedding(3, self.dim, rng=rng)
        self.link_head = nn.MLP([self.dim, self.dim, 1], rng=rng)
        self.prop_head = nn.MLP([self.dim, self.dim, 1], rng=rng)

    def forward(self, batch, task: str = "link"):
        seg = nn.segment_info(batch.batch)
        pooled = nn.functional.segment_mean(self.embed(batch.node_types), seg)
        heads = {"link": self.link_head, "toy_property": self.prop_head}
        if task not in heads:
            raise ValueError(f"TinyMLP cannot run task {task!r}")
        return heads[task](pooled).reshape(seg.num_segments)

    def config(self) -> dict:
        return {"dim": self.dim, "pe_kind": self.pe_kind}


class ToyPropertyTask(GraphPropertyTask):
    """A GraphPropertyTask variant under its own registry name/head."""

    name = "toy_property"
    model_task = None  # drive the backbone's own "toy_property" head


@pytest.fixture(scope="module", autouse=True)
def plugin_components():
    """Register the plugin for this module and clean up afterwards."""
    BACKBONES.register("tiny_mlp", TinyMLP)
    TASKS.register("toy_property", ToyPropertyTask)
    yield
    BACKBONES.unregister("tiny_mlp")
    TASKS.unregister("toy_property")


@pytest.fixture(scope="module")
def toy_spec():
    return ExperimentSpec(
        backbone={"type": "tiny_mlp", "dim": 12, "pe_kind": "none"},
        task={"type": "toy_property", "property": "density"},
        train={"epochs": 1, "batch_size": 16},
        data={"scale": 0.3, "max_links_per_design": 24,
              "max_nodes_per_design": 12, "max_nodes_per_hop": 8},
        mode="all",
        name="toy-plugin",
    )


@pytest.fixture(scope="module")
def trained(toy_spec, small_design):
    return fit(toy_spec, designs=[small_design])


class TestPluginEndToEnd:
    def test_spec_round_trips_through_json(self, toy_spec):
        assert ExperimentSpec.from_json(toy_spec.to_json()) == toy_spec

    def test_fit_builds_the_registered_components(self, trained):
        assert isinstance(trained.pretrain_result.model, TinyMLP)
        result = trained.finetune_results[("toy_property", "all")]
        assert isinstance(result.model, TinyMLP)
        assert isinstance(result.trainer.task_obj, ToyPropertyTask)
        assert np.isfinite(result.history.last()["loss"])

    def test_evaluate_through_the_facade(self, trained, small_design):
        metrics = evaluate(trained, small_design.name, task="toy_property")
        assert np.isfinite(metrics["mae"])
        assert metrics["num_samples"] > 0

    def test_checkpoint_save_load_rebuilds_plugin_graph(self, trained, tmp_path,
                                                        small_design):
        path = trained.save(tmp_path / "plugin.npz")
        loaded = load(path)
        assert isinstance(loaded.pretrain_result.model, TinyMLP)
        assert isinstance(
            loaded.finetune_results[("toy_property", "all")].model, TinyMLP)
        original = trained.pretrain_result.model.state_dict()
        restored = loaded.pretrain_result.model.state_dict()
        for name, value in original.items():
            np.testing.assert_array_equal(restored[name], value, err_msg=name)
        # The persisted spec survives the round-trip.
        assert loaded.spec.backbone_type == "tiny_mlp"
        assert loaded.spec.task_type == "toy_property"
        assert ExperimentSpec.from_json(loaded.spec.to_json()).backbone["dim"] == 12

    def test_annotate_serves_the_plugin_task(self, trained, tmp_path, small_design):
        path = trained.save(tmp_path / "serve.npz")
        loaded = load(path)
        graph = small_design.graph
        link = graph.links[0]
        pairs = [(graph.node_names[link.source], graph.node_names[link.target])]
        annotation = annotate(loaded, small_design.circuit, pairs=pairs,
                              task="toy_property", batch_size=8)
        assert annotation.num_candidates == 1
        record = annotation.records[0]
        assert 0.0 <= record["coupling_probability"] <= 1.0
        assert 0.0 <= record["capacitance_normalized"] <= 1.0

    def test_unregistered_backbone_fails_actionably(self, toy_spec, trained,
                                                    tmp_path):
        """Loading a plugin checkpoint without the plugin names the gap."""
        path = trained.save(tmp_path / "orphan.npz")
        BACKBONES.unregister("tiny_mlp")
        try:
            with pytest.raises(ValueError, match="unknown backbone 'tiny_mlp'"):
                load(path)
        finally:
            BACKBONES.register("tiny_mlp", TinyMLP)
