"""Tests for the Task abstraction and legacy task-string resolution."""

import numpy as np
import pytest

from repro.api import (
    EdgeRegressionTask,
    GraphPropertyTask,
    LinkPredictionTask,
    NodeRegressionTask,
    TASKS,
    Task,
    resolve_task,
)
from repro.core import DataConfig, SubgraphDataset, Trainer, build_model, ExperimentConfig


class TestResolution:
    @pytest.mark.parametrize("name,expected", [
        ("link", LinkPredictionTask),
        ("edge_regression", EdgeRegressionTask),
        ("node_regression", NodeRegressionTask),
        ("graph_property", GraphPropertyTask),
    ])
    def test_legacy_strings_resolve_to_the_right_task(self, name, expected):
        task = resolve_task(name)
        assert isinstance(task, expected)
        assert task.name == name

    def test_spec_dict_resolves_with_kwargs(self):
        task = resolve_task({"type": "graph_property", "property": "log_size"})
        assert task.property == "log_size"

    def test_task_instances_pass_through(self):
        task = EdgeRegressionTask()
        assert resolve_task(task) is task

    def test_unknown_string_raises_value_error_listing_names(self):
        with pytest.raises(ValueError, match="unknown task 'segmentation', available:"):
            resolve_task("segmentation")

    def test_non_task_types_rejected(self):
        with pytest.raises(ValueError, match="must be a Task"):
            resolve_task(3.14)

    def test_kinds_and_head_tasks(self):
        assert resolve_task("link").kind == "classification"
        assert resolve_task("edge_regression").kind == "regression"
        assert resolve_task("graph_property").head_task == "node_regression"
        assert resolve_task("edge_regression").head_task == "edge_regression"


class TestLossAndPredict:
    class _Batch:
        labels = np.array([1.0, 0.0, 1.0])
        targets = np.array([0.25, 0.5, 0.75])

    def test_classification_loss_and_predict(self):
        from repro.nn import Tensor

        task = LinkPredictionTask()
        loss = task.loss(Tensor(np.array([2.0, -2.0, 0.5])), self._Batch())
        assert np.isfinite(loss.item())
        scores = task.predict(np.array([-50.0, 0.0, 50.0]))
        assert np.all((scores >= 0) & (scores <= 1))

    def test_regression_loss_and_predict_clips(self):
        from repro.nn import Tensor

        task = EdgeRegressionTask()
        loss = task.loss(Tensor(np.array([0.2, 0.4, 0.6])), self._Batch())
        assert loss.item() >= 0
        scores = task.predict(np.array([-0.5, 0.5, 1.5]))
        np.testing.assert_allclose(scores, [0.0, 0.5, 1.0])

    def test_metrics_dispatch(self):
        class FakeDataset:
            def labels(self):
                return np.array([1.0, 0.0])

            def targets(self):
                return np.array([0.3, 0.7])

        link_metrics = LinkPredictionTask().metrics(np.array([0.9, 0.1]), FakeDataset())
        assert "auc" in link_metrics
        reg_metrics = EdgeRegressionTask().metrics(np.array([0.3, 0.7]), FakeDataset())
        assert "mae" in reg_metrics


class TestDatasetConstruction:
    def test_build_dataset_pools_and_shuffles(self, small_design):
        config = DataConfig(max_links_per_design=20, max_nodes_per_hop=10)
        dataset = EdgeRegressionTask().build_dataset(
            [small_design], config, pe_kind="dspd", rng=np.random.default_rng(0))
        assert isinstance(dataset, SubgraphDataset)
        assert len(dataset) > 0
        assert np.all(dataset.targets() >= 0.0)

    def test_graph_property_targets_are_the_property(self, small_design):
        config = DataConfig(max_nodes_per_design=10, max_nodes_per_hop=10)
        task = GraphPropertyTask(property="density")
        samples = task.build_samples(small_design, config,
                                     rng=np.random.default_rng(0))
        assert samples
        for sample in samples:
            assert sample.target == pytest.approx(task.target_of(sample))
            assert 0.0 <= sample.target <= 1.0
            assert sample.extras["property"] == "density"

    def test_graph_property_rejects_unknown_property(self):
        with pytest.raises(ValueError, match="unknown graph property"):
            GraphPropertyTask(property="entropy")

    def test_graph_property_spec_round_trip(self):
        task = GraphPropertyTask(property="log_size")
        assert resolve_task(task.spec()) == task


class TestTrainerIntegration:
    def test_trainer_accepts_task_objects_and_strings(self, tiny_config):
        model = build_model(tiny_config)
        by_string = Trainer(model, task="edge_regression", config=tiny_config.train)
        by_object = Trainer(model, task=EdgeRegressionTask(), config=tiny_config.train)
        assert by_string.task == by_object.task == "edge_regression"
        assert isinstance(by_string.task_obj, EdgeRegressionTask)

    def test_trainer_rejects_unknown_task(self, tiny_config):
        model = build_model(tiny_config)
        with pytest.raises(ValueError):
            Trainer(model, task="diffusion", config=tiny_config.train)

    def test_custom_task_trains_on_builtin_backbone(self, tiny_config, small_design):
        """A registered one-class task drives training with no core edits."""
        from repro.core import finetune_task

        result = finetune_task([small_design], GraphPropertyTask(), mode="scratch",
                               config=tiny_config, epochs=1)
        assert result.task == "graph_property"
        metrics = result.trainer.evaluate(result.train_samples)
        assert np.isfinite(metrics["mae"])


class TestRegistryHygiene:
    def test_registered_tasks_are_task_subclasses(self):
        for name in TASKS.names():
            built = TASKS.build(name) if name != "graph_property" else TASKS.build(
                {"type": name, "property": "density"})
            assert isinstance(built, Task)
