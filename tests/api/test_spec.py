"""ExperimentSpec validation, serialisation and round-trip property tests."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ExperimentSpec, SPEC_VERSION, SpecError
from repro.core import ExperimentConfig


# --------------------------------------------------------------------------- #
# Randomised valid specs (hypothesis)
# --------------------------------------------------------------------------- #
def _backbone_specs():
    kwargs = st.fixed_dictionaries(
        {},
        optional={
            "dim": st.sampled_from([16, 32, 48]),
            "num_layers": st.integers(1, 3),
            "attention": st.sampled_from(["transformer", "performer", "none"]),
            "pe_kind": st.sampled_from(["dspd", "drnl", "none"]),
            "dropout": st.sampled_from([0.0, 0.1]),
        },
    )
    return kwargs.map(lambda kw: {"type": "circuitgps", **kw})


def _task_specs():
    return st.one_of(
        st.sampled_from(["link", "edge_regression", "node_regression"]).map(
            lambda t: {"type": t}),
        st.sampled_from(["density", "log_size"]).map(
            lambda p: {"type": "graph_property", "property": p}),
    )


def _train_dicts():
    return st.fixed_dictionaries(
        {},
        optional={
            "epochs": st.integers(1, 30),
            "batch_size": st.sampled_from([16, 32, 64]),
            "lr": st.sampled_from([1e-3, 3e-3]),
            "seed": st.integers(0, 5),
        },
    )


def _data_dicts():
    return st.fixed_dictionaries(
        {},
        optional={
            "scale": st.sampled_from([0.25, 0.5]),
            "max_links_per_design": st.integers(10, 400),
            "hops": st.integers(1, 2),
            "seed": st.integers(0, 5),
        },
    )


valid_specs = st.builds(
    ExperimentSpec,
    backbone=_backbone_specs(),
    task=_task_specs(),
    train=_train_dicts(),
    data=_data_dicts(),
    mode=st.sampled_from(["scratch", "head", "all"]),
    pretrain=st.booleans(),
    name=st.sampled_from(["experiment", "ablation-3", "x"]),
)


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(spec=valid_specs)
    def test_dict_round_trip_is_identity(self, spec):
        spec.validate()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    @settings(max_examples=25, deadline=None)
    @given(spec=valid_specs)
    def test_json_round_trip_is_identity(self, spec):
        spec.validate()
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_json_file_round_trip(self, tmp_path):
        spec = ExperimentSpec(backbone={"type": "circuitgps", "dim": 24},
                              task={"type": "node_regression"})
        path = tmp_path / "spec.json"
        spec.to_json(path)
        assert ExperimentSpec.from_json(path) == spec
        # The file is plain JSON (editable by hand / other tools).
        assert json.loads(path.read_text())["backbone"]["dim"] == 24

    def test_string_components_normalise_to_dicts(self):
        spec = ExperimentSpec(backbone="circuitgps", task="link")
        assert spec.backbone == {"type": "circuitgps"}
        assert spec.task == {"type": "link"}
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec


class TestValidation:
    def test_unknown_backbone_names_available(self):
        with pytest.raises(ValueError, match="unknown backbone 'gpsx', available:"):
            ExperimentSpec.from_dict({"backbone": "gpsx"})

    def test_unknown_task_names_available(self):
        with pytest.raises(ValueError, match="unknown task 'segmentation', available:"):
            ExperimentSpec.from_dict({"task": {"type": "segmentation"}})

    def test_unknown_top_level_key(self):
        with pytest.raises(SpecError, match=r"unknown experiment-spec key\(s\) \['optimizer'\]"):
            ExperimentSpec.from_dict({"optimizer": "adam"})

    def test_unknown_train_key_lists_valid_keys(self):
        with pytest.raises(SpecError, match=r"unknown train key\(s\) \['learning_rate'\]"):
            ExperimentSpec.from_dict({"train": {"learning_rate": 1e-3}})

    def test_unknown_data_key_lists_valid_keys(self):
        with pytest.raises(SpecError, match="unknown data key"):
            ExperimentSpec.from_dict({"data": {"n_hops": 2}})

    def test_newer_version_rejected(self):
        with pytest.raises(SpecError, match="newer than the supported"):
            ExperimentSpec.from_dict({"version": SPEC_VERSION + 1})

    def test_bad_version_type_rejected(self):
        with pytest.raises(SpecError, match="positive int"):
            ExperimentSpec.from_dict({"version": "one"})

    def test_bad_mode_rejected(self):
        with pytest.raises(SpecError, match="mode must be one of"):
            ExperimentSpec.from_dict({"mode": "partial"})

    def test_bad_pretrain_rejected(self):
        with pytest.raises(SpecError, match="pretrain must be a bool"):
            ExperimentSpec.from_dict({"pretrain": "yes"})

    def test_component_spec_without_type(self):
        with pytest.raises(SpecError, match="component name or a"):
            ExperimentSpec.from_dict({"backbone": {"dim": 32}})

    def test_non_dict_payload_rejected(self):
        with pytest.raises(SpecError, match="must be a dict"):
            ExperimentSpec.from_dict(["backbone"])

    def test_invalid_json_text(self):
        with pytest.raises(SpecError, match="not valid JSON"):
            ExperimentSpec.from_json("{not json")


class TestConfigBridge:
    def test_from_config_carries_model_fields(self):
        config = ExperimentConfig.fast().with_model(dim=24, attention="none")
        spec = ExperimentSpec.from_config(config, task="node_regression", mode="head")
        assert spec.backbone["dim"] == 24
        assert spec.backbone["attention"] == "none"
        assert spec.task == {"type": "node_regression"}
        assert spec.mode == "head"

    def test_to_config_round_trips_model_fields(self):
        config = ExperimentConfig.fast().with_model(dim=24, num_layers=2)
        rebuilt = ExperimentSpec.from_config(config).to_config()
        assert rebuilt.model == config.model
        assert rebuilt.data == config.data

    def test_coerce_accepts_config_dict_spec_and_json(self):
        config = ExperimentConfig.fast()
        from_config = ExperimentSpec.coerce(config)
        assert from_config.backbone_type == "circuitgps"
        spec = ExperimentSpec(task="link")
        assert ExperimentSpec.coerce(spec) is spec
        assert ExperimentSpec.coerce(spec.to_dict()) == spec
        assert ExperimentSpec.coerce(spec.to_json()) == spec
        with pytest.raises(SpecError, match="cannot build"):
            ExperimentSpec.coerce(42)

    def test_build_backbone_and_task(self):
        spec = ExperimentSpec(
            backbone={"type": "circuitgps", "dim": 16, "num_layers": 1,
                      "attention": "none"},
            task={"type": "graph_property", "property": "log_size"},
        )
        model = spec.build_backbone(rng=0)
        assert model.dim == 16
        task = spec.build_task()
        assert task.name == "graph_property"
        assert task.property == "log_size"


class TestBackendField:
    """The ``backend`` field selects the compute backend (PR 6)."""

    def test_default_is_numpy(self):
        assert ExperimentSpec().backend == "numpy"

    def test_round_trips_through_dict_and_json(self):
        spec = ExperimentSpec(backend="torch")
        assert ExperimentSpec.from_dict(spec.to_dict()).backend == "torch"
        assert ExperimentSpec.from_json(spec.to_json()).backend == "torch"

    def test_optional_backend_is_valid_even_when_not_installed(self):
        # Name check only: a spec written on a GPU box must stay loadable
        # on a machine without torch; the failure happens at build time.
        ExperimentSpec(backend="numba").validate()
        ExperimentSpec(backend="torch").validate()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown compute backend"):
            ExperimentSpec.from_dict({"backend": "tpu"})

    def test_non_string_backend_rejected(self):
        with pytest.raises(SpecError, match="backend"):
            ExperimentSpec(backend=3).validate()
