"""Error-path and contract tests for the generic component registry."""

import pytest

from repro.api import (
    ATTENTION,
    BACKBONES,
    ENCODINGS,
    HEADS,
    REGISTRIES,
    SAMPLERS,
    TASKS,
    Registry,
    RegistryError,
    list_components,
)


class TestRegistration:
    def test_decorator_registers_and_returns_object(self):
        registry = Registry("widget")

        @registry.register("plain")
        class Widget:
            pass

        assert registry.get("plain") is Widget
        assert Widget.registry_name == "plain"
        assert "plain" in registry

    def test_duplicate_registration_raises(self):
        registry = Registry("widget")
        registry.register("w", object())
        with pytest.raises(RegistryError, match="duplicate widget registration"):
            registry.register("w", object())

    def test_names_are_case_insensitive(self):
        registry = Registry("widget")
        marker = object()
        registry.register("MixedCase", marker)
        assert registry.get("mixedcase") is marker
        assert registry.get("MIXEDCASE") is marker

    def test_unregister_frees_the_name(self):
        registry = Registry("widget")
        registry.register("w", object())
        registry.unregister("w")
        assert "w" not in registry
        registry.register("w", object())  # no duplicate error


class TestLookupErrors:
    def test_unknown_name_lists_available(self):
        registry = Registry("widget")
        registry.register("alpha", object())
        registry.register("beta", object())
        with pytest.raises(RegistryError, match="unknown widget 'gamma', "
                                                "available: alpha, beta"):
            registry.get("gamma")

    def test_unknown_name_on_empty_registry(self):
        registry = Registry("widget")
        with pytest.raises(RegistryError, match=r"\(none registered\)"):
            registry.get("anything")

    def test_registry_error_is_a_value_error(self):
        assert issubclass(RegistryError, ValueError)

    def test_unknown_backbone_build_names_available(self):
        with pytest.raises(ValueError, match="unknown backbone 'gpsx', available:"):
            BACKBONES.build({"type": "gpsx"})


class TestBuild:
    def test_build_from_bare_name(self):
        registry = Registry("widget")

        @registry.register("w")
        class Widget:
            def __init__(self, size=3):
                self.size = size

        assert registry.build("w").size == 3

    def test_build_from_spec_dict_with_kwargs(self):
        registry = Registry("widget")

        @registry.register("w")
        class Widget:
            def __init__(self, size=3):
                self.size = size

        assert registry.build({"type": "w", "size": 9}).size == 9

    def test_spec_without_type_raises(self):
        registry = Registry("widget")
        with pytest.raises(RegistryError, match="no 'type' key"):
            registry.build({"size": 9})

    def test_spec_of_bad_type_raises(self):
        with pytest.raises(RegistryError, match="must be a name or a"):
            Registry.spec_of(42)

    def test_common_kwargs_filtered_by_signature(self):
        registry = Registry("widget")

        @registry.register("no_rng")
        class NoRng:
            def __init__(self, size=1):
                self.size = size

        @registry.register("with_rng")
        class WithRng:
            def __init__(self, size=1, rng=None):
                self.rng = rng

        assert registry.build("no_rng", rng="SENTINEL").size == 1  # rng dropped
        assert registry.build("with_rng", rng="SENTINEL").rng == "SENTINEL"

    def test_explicit_spec_kwarg_beats_common_kwarg(self):
        registry = Registry("widget")

        @registry.register("w")
        class Widget:
            def __init__(self, rng=None):
                self.rng = rng

        assert registry.build({"type": "w", "rng": "SPEC"}, rng="COMMON").rng == "SPEC"

    def test_bad_kwargs_raise_registry_error(self):
        registry = Registry("widget")

        @registry.register("w")
        class Widget:
            def __init__(self):
                pass

        with pytest.raises(RegistryError, match="could not build widget 'w'"):
            registry.build({"type": "w", "bogus": 1})

    def test_name_of_reverse_lookup(self):
        registry = Registry("widget")

        @registry.register("w")
        class Widget:
            pass

        assert registry.name_of(Widget) == "w"
        assert registry.name_of(Widget()) == "w"
        assert registry.name_of(object()) is None


class TestBuiltinRegistries:
    def test_builtins_are_populated(self):
        assert "circuitgps" in BACKBONES
        assert {"transformer", "performer"} <= set(ATTENTION.names())
        assert {"link_prediction", "regression"} <= set(HEADS.names())
        assert {"none", "dspd", "drnl", "rwse", "lappe", "stats"} <= set(ENCODINGS.names())
        assert {"enclosing", "node"} <= set(SAMPLERS.names())
        assert {"link", "edge_regression", "node_regression",
                "graph_property"} <= set(TASKS.names())

    def test_list_components_covers_every_registry(self):
        listing = list_components()
        assert set(listing) == set(REGISTRIES)
        for family, names in listing.items():
            assert names == sorted(names)
            assert names, f"registry {family} is empty"

    def test_backbone_reverse_lookup(self):
        from repro.core import ExperimentConfig, build_model

        model = build_model(ExperimentConfig.fast().with_model(dim=16, num_layers=1,
                                                               attention="none"))
        assert BACKBONES.name_of(model) == "circuitgps"
