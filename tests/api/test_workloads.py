"""End-to-end tests for the one-file workload plugins (`repro.workloads`).

Both workloads must train through the public facade — ``repro.api.fit`` with
only a task name — and their declarative ``DEFAULT_SAMPLING`` pipelines must
actually shape the sampled data: fanout-bounded subgraphs for the SRAM
workload, cross-cell-only seed links for the hierarchy workload.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ExperimentSpec, TASKS, evaluate, fit
from repro.api.tasks import resolve_task
from repro.core import DataConfig
from repro.graph import SeedBatch, as_pipeline
from repro.workloads import (
    CrossCellSeedStage,
    CrossHierarchyLinkTask,
    SRAMCouplingTask,
    cross_cell_links,
    sram_design,
)


@pytest.fixture(scope="module")
def sram():
    """A small banked SRAM design shared by both workload tests."""
    return sram_design(banks=2, rows=4, cols=2, seed=0)


def _tiny_spec(task: str) -> ExperimentSpec:
    return ExperimentSpec(
        backbone={"type": "circuitgps", "dim": 16, "num_layers": 1,
                  "pe_hidden": 4, "dropout": 0.0, "attention": "none"},
        task=task,
        train={"epochs": 2, "batch_size": 32, "lr": 5e-3},
        data={"max_links_per_design": 48, "max_nodes_per_hop": 10},
        name=f"{task}-e2e",
    )


class TestSRAMCouplingWorkload:
    def test_design_keeps_hierarchy_prefixes(self, sram):
        assert sram.split == "train"
        assert any("/" in name for name in sram.graph.node_names)
        assert sram.graph.links

    def test_task_registered_with_fanout_sampling(self):
        task = resolve_task("sram_coupling")
        assert isinstance(task, SRAMCouplingTask)
        stages = [entry["stage"] for entry in task.sampling]
        assert "fanout" in stages
        # The spec survives the task's declarative round-trip.
        assert resolve_task(task.spec()).sampling == task.sampling

    def test_sampling_bounds_subgraphs(self, sram):
        """The fanout plan keeps SRAM subgraphs smaller than unbounded ones."""
        task = resolve_task("sram_coupling")
        config = DataConfig(max_links_per_design=32)
        bounded = task.build_samples(sram, config, rng=np.random.default_rng(0))
        # The same recipe with the fanout stage dropped (and the same 2-hop
        # radius the [8, 4] plan implies) expands frontiers unboundedly.
        unbounded_spec = [dict(e) for e in task.sampling
                          if e["stage"] != "fanout"]
        for entry in unbounded_spec:
            if entry["stage"] == "enclosing":
                entry["hops"] = 2
        free_task = resolve_task({"type": "sram_coupling",
                                  "sampling": unbounded_spec})
        free = free_task.build_samples(sram, config,
                                       rng=np.random.default_rng(0))
        assert bounded
        assert max(s.node_ids.size for s in bounded) < \
            max(s.node_ids.size for s in free)
        assert np.mean([s.node_ids.size for s in bounded]) < \
            np.mean([s.node_ids.size for s in free])

    def test_fit_end_to_end(self, sram):
        pipeline = fit(_tiny_spec("sram_coupling"), designs=[sram])
        result = pipeline.pretrain_result
        assert result is not None
        assert np.isfinite(result.history.last()["loss"])
        metrics = evaluate(pipeline, sram.name, task="sram_coupling")
        assert 0.0 <= metrics["auc"] <= 1.0
        assert metrics["num_samples"] > 0


class TestCrossHierarchyWorkload:
    def test_cross_cell_links_found_on_hierarchical_design(self, sram):
        crossing = cross_cell_links(sram.graph)
        assert crossing
        names = sram.graph.node_names
        for link in crossing[:20]:
            cell = lambda n: n.split("/", 1)[0] if "/" in n else ""
            assert cell(names[link.source]) != cell(names[link.target])

    def test_seed_stage_filters_to_crossing_links(self, sram):
        _, seeds = CrossCellSeedStage()(sram.graph, None,
                                        rng=np.random.default_rng(0))
        assert seeds.positives == cross_cell_links(sram.graph)

    def test_seed_stage_raises_actionably_on_flat_design(self, sram):
        """A design without 'CELL/...' prefixes: the error must say so."""
        from repro.graph import CircuitGraph

        graph = sram.graph
        flat = CircuitGraph(
            name="FLAT", node_types=graph.node_types,
            node_names=[n.replace("/", "_") for n in graph.node_names],
            edge_index=graph.edge_index, edge_types=graph.edge_types,
            node_stats=graph.node_stats, links=graph.links)
        with pytest.raises(ValueError, match="cross_hierarchy"):
            CrossCellSeedStage()(flat, None, rng=np.random.default_rng(0))

    def test_task_pipeline_yields_only_crossing_positives(self, sram):
        task = resolve_task("cross_hierarchy")
        assert isinstance(task, CrossHierarchyLinkTask)
        pipeline = as_pipeline(task.sampling)
        _, seeds = pipeline(sram.graph, SeedBatch(),
                            rng=np.random.default_rng(0))
        crossing_keys = {l.key() for l in cross_cell_links(sram.graph)}
        positives = [s for s in seeds.subgraphs if s.label > 0]
        assert positives
        # Every positive subgraph was extracted around a cross-cell link.
        assert all(l.key() in crossing_keys for l in seeds.positives)

    def test_fit_end_to_end(self, sram):
        pipeline = fit(_tiny_spec("cross_hierarchy"), designs=[sram])
        result = pipeline.pretrain_result
        assert result is not None
        assert np.isfinite(result.history.last()["loss"])
        metrics = evaluate(pipeline, sram.name, task="cross_hierarchy")
        assert 0.0 <= metrics["auc"] <= 1.0


class TestWorkloadRegistration:
    def test_both_tasks_listed(self):
        assert {"sram_coupling", "cross_hierarchy"} <= set(TASKS.names())

    def test_spec_level_sampling_defers_to_task_default(self, sram):
        """Task-level DEFAULT_SAMPLING wins over a spec-level override."""
        spec = ExperimentSpec(task="sram_coupling", sampling="link_dataset")
        spec.validate()
        task = spec.build_task()
        assert task.sampling == resolve_task("sram_coupling").sampling
