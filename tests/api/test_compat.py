"""Backward-compatibility sweep for the registry-driven API redesign.

Pins three contracts:

* v1/v2 pipeline checkpoints still load under schema v3,
* legacy ``task=`` strings resolve to the right :class:`repro.api.Task`
  everywhere they used to be accepted,
* each deprecated wrapper fires exactly one :class:`DeprecationWarning`
  carrying a migration hint.
"""

import warnings

import numpy as np
import pytest

from repro.api import EdgeRegressionTask, ExperimentSpec
from repro.core import (
    PIPELINE_SCHEMA,
    AnnotationEngine,
    CircuitGPSPipeline,
    finetune_regression,
)
from repro.utils import load_checkpoint, save_checkpoint


@pytest.fixture(scope="module")
def trained(tiny_config, small_design):
    pipe = CircuitGPSPipeline(tiny_config)
    pipe.add_design(small_design)
    pipe.pretrain()
    pipe.finetune(mode="all", task="edge_regression")
    return pipe


def _strip_v3_metadata(metadata: dict) -> dict:
    """Rewrite v3 checkpoint metadata into its v2 shape."""
    metadata = dict(metadata)
    metadata.pop("spec", None)
    v2_keys = ("dim", "num_layers", "pe_kind", "pe_hidden", "mpnn", "attention",
               "stats_dim")

    def downgrade(model_meta):
        return {k: v for k, v in model_meta.items() if k in v2_keys}

    metadata["model"] = downgrade(metadata.get("model", {}))
    metadata["finetunes"] = [dict(entry, model=downgrade(entry.get("model", {})))
                             for entry in metadata.get("finetunes", [])]
    return metadata


def _downgraded_artifact(trained, tmp_path, version: int):
    """A v1/v2-layout archive rewritten from a freshly saved v3 artifact."""
    source = trained.save(tmp_path / "v3.npz")
    state, metadata = load_checkpoint(source)
    metadata = _strip_v3_metadata(metadata)
    if version < 2:  # v1 had no optimizer/schedule state
        state = {k: v for k, v in state.items() if not k.startswith("optim.")}
    path = tmp_path / f"v{version}.npz"
    save_checkpoint(path, state, metadata, schema=PIPELINE_SCHEMA, version=version)
    return path


class TestCheckpointCompat:
    def test_v3_artifact_carries_spec_and_type_stamps(self, trained, tmp_path):
        path = trained.save(tmp_path / "artifact.npz")
        _, metadata = load_checkpoint(path)
        assert metadata["model"]["type"] == "circuitgps"
        assert all(e["model"]["type"] == "circuitgps" for e in metadata["finetunes"])
        spec = ExperimentSpec.from_dict(metadata["spec"])
        assert spec.backbone_type == "circuitgps"
        assert spec.task_type == "edge_regression"

    @pytest.mark.parametrize("version", [1, 2])
    def test_old_versions_load_under_v3(self, trained, tmp_path, version):
        path = _downgraded_artifact(trained, tmp_path, version)
        fresh = CircuitGPSPipeline.from_checkpoint(path)
        original = trained.pretrain_result.model.state_dict()
        loaded = fresh.pretrain_result.model.state_dict()
        for name, value in original.items():
            np.testing.assert_array_equal(loaded[name], value, err_msg=name)
        assert ("edge_regression", "all") in fresh.finetune_results
        # The rebuilt pipeline re-saves as v3 with a synthesised spec.
        resaved = fresh.save(tmp_path / f"resaved_v{version}.npz")
        _, metadata = load_checkpoint(resaved)
        assert metadata["spec"]["backbone"]["type"] == "circuitgps"

    def test_parameterized_task_round_trips_through_checkpoints(
            self, tiny_config, small_design, tmp_path):
        """Task constructor kwargs persist (not just the registry name)."""
        from repro.api import GraphPropertyTask

        pipe = CircuitGPSPipeline(tiny_config)
        pipe.add_design(small_design)
        pipe.finetune(mode="scratch",
                      task=GraphPropertyTask(property="log_size"))
        pipe.pretrain()  # save() needs the link model
        path = pipe.save(tmp_path / "param_task.npz")
        loaded = CircuitGPSPipeline.from_checkpoint(path)
        task_obj = loaded.finetune_results[("graph_property", "scratch")].trainer.task_obj
        assert isinstance(task_obj, GraphPropertyTask)
        assert task_obj.property == "log_size"
        assert loaded.spec.task == {"type": "graph_property", "property": "log_size"}

    def test_v3_round_trip_preserves_weights_and_spec(self, trained, tmp_path):
        path = trained.save(tmp_path / "rt.npz")
        fresh = CircuitGPSPipeline.from_checkpoint(path)
        np.testing.assert_array_equal(
            fresh.pretrain_result.model.state_dict()["node_encoder.weight"],
            trained.pretrain_result.model.state_dict()["node_encoder.weight"],
        )
        assert fresh.spec.task_type == trained.spec.task_type


class TestLegacyTaskStrings:
    def test_trainer_and_engine_accept_strings(self, trained):
        engine = AnnotationEngine(trained, task="edge_regression", mode="all")
        assert isinstance(engine.task_obj, EdgeRegressionTask)
        assert engine.task == "edge_regression"

    def test_pipeline_evaluate_accepts_string_and_task(self, trained, small_design):
        by_string = trained.evaluate_regression(small_design.name,
                                                task="edge_regression")
        by_task = trained.evaluate_regression(small_design.name,
                                              task=EdgeRegressionTask())
        assert by_string == by_task

    def test_finetune_keys_are_task_names(self, trained):
        assert ("edge_regression", "all") in trained.finetune_results
        result = trained.finetune_results[("edge_regression", "all")]
        assert result.task == "edge_regression"


def _deprecations(record) -> list[warnings.WarningMessage]:
    return [w for w in record
            if issubclass(w.category, DeprecationWarning)
            and "deprecated" in str(w.message)]


class TestDeprecatedWrappers:
    def test_finetune_regression_warns_exactly_once(self, tiny_config, small_design):
        with pytest.warns(DeprecationWarning,
                          match="finetune_regression.*deprecated.*repro.api.fit") as record:
            result = finetune_regression([small_design], mode="scratch",
                                         config=tiny_config, epochs=1)
        assert len(_deprecations(record)) == 1
        assert result.task == "edge_regression"

    def test_predict_couplings_warns_exactly_once(self, trained, small_design):
        graph = small_design.graph
        link = graph.links[0]
        pair = (graph.node_names[link.source], graph.node_names[link.target])
        with pytest.warns(DeprecationWarning,
                          match="predict_couplings.*deprecated.*repro.api.annotate") as record:
            records = trained.predict_couplings(small_design.circuit, [pair])
        assert len(_deprecations(record)) == 1
        assert len(records) == 1

    def test_from_models_warns_exactly_once(self, tiny_config):
        from repro.core import build_model

        with pytest.warns(DeprecationWarning,
                          match="from_models.*deprecated.*repro.api.load") as record:
            CircuitGPSPipeline.from_models(tiny_config, build_model(tiny_config))
        assert len(_deprecations(record)) == 1

    def test_internal_paths_do_not_warn(self, tiny_config, small_design, tmp_path):
        """Training, saving and loading through the new API never warns."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            pipe = CircuitGPSPipeline(tiny_config)
            pipe.add_design(small_design)
            pipe.pretrain()
            pipe.finetune(mode="scratch", task="edge_regression")
            path = pipe.save(tmp_path / "clean.npz")
            CircuitGPSPipeline.from_checkpoint(path)
