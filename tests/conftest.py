"""Shared fixtures: small designs, graphs and configurations reused across tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DataConfig, DesignData, ExperimentConfig
from repro.graph import netlist_to_graph
from repro.netlist import (
    build_design,
    extract_parasitics,
    place_circuit,
    ssram,
    timing_control,
)
from repro.utils import seed_all


def pytest_addoption(parser):
    """``--update-golden`` refreshes the files under ``tests/golden/``."""
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite the golden regression files with the current output "
             "instead of asserting against them",
    )


@pytest.fixture
def update_golden(request) -> bool:
    """Whether this run should rewrite golden files instead of comparing."""
    return bool(request.config.getoption("--update-golden"))


@pytest.fixture(autouse=True)
def _seed_everything():
    """Keep every test deterministic."""
    seed_all(1234)
    yield


@pytest.fixture(scope="session")
def tiny_circuit():
    """A very small flat circuit (control logic only) for unit tests."""
    return timing_control(num_outputs=2, pipeline_depth=1).flatten()


@pytest.fixture(scope="session")
def small_design() -> DesignData:
    """A small SSRAM-like design carried through the full pipeline."""
    circuit = ssram(rows=4, cols=4).flatten()
    placement = place_circuit(circuit, rng=0)
    parasitics = extract_parasitics(placement, rng=1)
    graph = netlist_to_graph(circuit, parasitics)
    return DesignData(name="SSRAM_TINY", circuit=circuit, placement=placement,
                      parasitics=parasitics, graph=graph, split="train",
                      raw_stats=graph.node_stats.copy())


@pytest.fixture(scope="session")
def small_test_design() -> DesignData:
    """A small test-split design (clock generator) for zero-shot checks."""
    circuit = build_design("DIGITAL_CLK_GEN", scale=0.4).flatten()
    placement = place_circuit(circuit, rng=2)
    parasitics = extract_parasitics(placement, rng=3)
    graph = netlist_to_graph(circuit, parasitics)
    return DesignData(name="CLK_TINY", circuit=circuit, placement=placement,
                      parasitics=parasitics, graph=graph, split="test",
                      raw_stats=graph.node_stats.copy())


@pytest.fixture(scope="session")
def tiny_config() -> ExperimentConfig:
    """An experiment configuration small enough for test-time training."""
    return (
        ExperimentConfig.fast()
        .with_model(dim=16, num_layers=1, pe_hidden=4, dropout=0.0, attention="none")
        .with_train(epochs=3, batch_size=32, lr=5e-3)
        .with_data(max_links_per_design=60, max_nodes_per_hop=12, max_nodes_per_design=40,
                   scale=0.3)
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(7)
