"""Tests for the positional/structural encodings (Table II variants)."""

import numpy as np
import pytest

from repro.graph import (
    PE_KINDS,
    Subgraph,
    compute_pe,
    drnl_encoding,
    dspd_encoding,
    extract_enclosing_subgraph,
    laplacian_encoding,
    pe_dim,
    rwse_encoding,
    stats_encoding,
)
from repro.graph.encodings import DSPD_MAX_DISTANCE


def _path_subgraph(num_nodes=5, anchors=(0, 4)):
    """A path graph 0-1-2-...-(n-1) wrapped as a Subgraph."""
    edges = np.array([[i for i in range(num_nodes - 1)], [i + 1 for i in range(num_nodes - 1)]])
    return Subgraph(
        node_ids=np.arange(num_nodes),
        node_types=np.zeros(num_nodes, dtype=np.int64),
        edge_index=edges,
        edge_types=np.zeros(num_nodes - 1, dtype=np.int64),
        anchors=anchors,
        node_stats=np.arange(num_nodes * 13, dtype=float).reshape(num_nodes, 13),
    )


class TestDSPD:
    def test_shape_and_one_hot(self):
        subgraph = _path_subgraph()
        encoding = dspd_encoding(subgraph)
        assert encoding.shape == (5, 2 * (DSPD_MAX_DISTANCE + 1))
        np.testing.assert_allclose(encoding.sum(axis=1), 2 * np.ones(5))

    def test_anchor_distances(self):
        subgraph = _path_subgraph()
        encoding = dspd_encoding(subgraph)
        # Node 0 is anchor 0: distance 0 to itself, distance 4 -> clipped bucket to anchor 1.
        assert encoding[0, 0] == 1.0
        assert encoding[0, (DSPD_MAX_DISTANCE + 1) + DSPD_MAX_DISTANCE] == 1.0
        # Node 2 is at distance 2 from both anchors.
        assert encoding[2, 2] == 1.0
        assert encoding[2, (DSPD_MAX_DISTANCE + 1) + 2] == 1.0

    def test_unreachable_nodes_use_last_bucket(self):
        subgraph = _path_subgraph()
        # Disconnect node 4 by dropping the last edge.
        subgraph.edge_index = subgraph.edge_index[:, :-1]
        subgraph.edge_types = subgraph.edge_types[:-1]
        encoding = dspd_encoding(subgraph)
        assert encoding[4, DSPD_MAX_DISTANCE] == 1.0  # unreachable from anchor 0

    def test_node_level_anchors_give_identical_halves(self):
        subgraph = _path_subgraph(anchors=(0, 0))
        encoding = dspd_encoding(subgraph)
        half = DSPD_MAX_DISTANCE + 1
        np.testing.assert_allclose(encoding[:, :half], encoding[:, half:])


class TestDRNL:
    def test_anchors_get_label_one(self):
        encoding = drnl_encoding(_path_subgraph())
        assert encoding[0, 1] == 1.0
        assert encoding[4, 1] == 1.0

    def test_labels_valid_one_hot(self):
        encoding = drnl_encoding(_path_subgraph(7, anchors=(0, 6)))
        np.testing.assert_allclose(encoding.sum(axis=1), np.ones(7))

    def test_symmetric_nodes_share_label(self):
        encoding = drnl_encoding(_path_subgraph())
        np.testing.assert_allclose(encoding[1], encoding[3])  # distance (1,3) vs (3,1)


class TestRWSE:
    def test_shape_and_range(self):
        encoding = rwse_encoding(_path_subgraph(), steps=6)
        assert encoding.shape == (5, 6)
        assert np.all(encoding >= 0.0) and np.all(encoding <= 1.0)

    def test_odd_step_return_probability_zero_on_path(self):
        encoding = rwse_encoding(_path_subgraph(), steps=4)
        # A path graph is bipartite: no odd-length closed walks.
        np.testing.assert_allclose(encoding[:, 0], np.zeros(5))
        np.testing.assert_allclose(encoding[:, 2], np.zeros(5))

    def test_isolated_node_safe(self):
        subgraph = _path_subgraph()
        subgraph.edge_index = np.zeros((2, 0), dtype=np.int64)
        subgraph.edge_types = np.zeros(0, dtype=np.int64)
        encoding = rwse_encoding(subgraph)
        assert np.all(np.isfinite(encoding))


class TestLapPE:
    def test_shape(self):
        encoding = laplacian_encoding(_path_subgraph(), dim=3)
        assert encoding.shape == (5, 3)

    def test_eigenvectors_orthogonal(self):
        encoding = laplacian_encoding(_path_subgraph(8, anchors=(0, 7)), dim=3)
        gram = encoding.T @ encoding
        off_diag = gram - np.diag(np.diag(gram))
        assert np.all(np.abs(off_diag) < 1e-8)

    def test_sign_fixed_deterministically(self):
        a = laplacian_encoding(_path_subgraph(), dim=2)
        b = laplacian_encoding(_path_subgraph(), dim=2)
        np.testing.assert_allclose(a, b)

    def test_small_graph_zero_padded(self):
        encoding = laplacian_encoding(_path_subgraph(2, anchors=(0, 1)), dim=4)
        assert encoding.shape == (2, 4)
        np.testing.assert_allclose(encoding[:, 1:], 0.0)


class TestStatsAndDispatch:
    def test_stats_encoding_scales_columns(self):
        encoding = stats_encoding(_path_subgraph())
        assert np.abs(encoding).max() <= 1.0 + 1e-12

    def test_stats_encoding_requires_stats(self):
        subgraph = _path_subgraph()
        subgraph.node_stats = None
        with pytest.raises(ValueError):
            stats_encoding(subgraph)

    def test_pe_dim_consistent_with_compute_pe(self):
        subgraph = _path_subgraph()
        for kind in PE_KINDS:
            encoding = compute_pe(subgraph, kind)
            assert encoding.shape == (subgraph.num_nodes, pe_dim(kind))
            assert subgraph.pe is encoding

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            compute_pe(_path_subgraph(), "fourier")
        with pytest.raises(ValueError):
            pe_dim("fourier")

    def test_real_subgraph_encodings_finite(self, small_design):
        graph = small_design.graph
        subgraph = extract_enclosing_subgraph(graph, graph.links[0], hops=1)
        for kind in PE_KINDS:
            encoding = compute_pe(subgraph, kind)
            assert np.all(np.isfinite(encoding))
