"""Property and regression tests for the vectorised negative samplers.

The hypothesis properties pin the sampler family's contract: negatives never
collide with observed links, endpoint node types are preserved, strict mode
delivers the exact requested count, and every sampler is deterministic under
(spawned) seeds.  The regression tests cover the historical
``generate_negative_links`` failure mode — silent under-delivery when the
rejection budget runs dry — which strict mode must turn into either an exact
completion or an actionable :class:`NegativeSamplingError`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from numpy.random import default_rng

from repro.graph import (
    Link,
    NegativeSamplingError,
    conditioned_negatives,
    permute_negative_links,
    stratified_negative_links,
    uniform_negative_links,
)

LINK_TYPES = (2, 3, 4)  # pin-net, pin-pin, net-net


def _keys(links) -> set[tuple[int, int]]:
    return {link.key() for link in links}


@st.composite
def positive_sets(draw):
    """A node count plus a duplicate-free list of typed positive links."""
    n = draw(st.integers(min_value=8, max_value=40))
    pairs = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1))
        .filter(lambda p: p[0] != p[1]),
        min_size=2, max_size=20,
        unique_by=lambda p: (min(p), max(p)),
    ))
    types = draw(st.lists(st.sampled_from(LINK_TYPES),
                          min_size=len(pairs), max_size=len(pairs)))
    links = [Link(a, b, t, label=1.0, capacitance=1e-15)
             for (a, b), t in zip(pairs, types)]
    return n, links


class TestPermuteProperties:
    @settings(max_examples=60, deadline=None)
    @given(positive_sets(), st.integers(0, 2**16))
    def test_no_collision_and_exact_count(self, case, seed):
        """Strict permutation: disjoint from positives, unique, exact count."""
        n, positives = case
        try:
            negatives = permute_negative_links(positives, n, ratio=1.0,
                                               rng=default_rng(seed))
        except NegativeSamplingError:
            return  # the graph genuinely cannot support ratio=1.0 — valid
        assert not _keys(positives) & _keys(negatives)
        assert all(link.source != link.target for link in negatives)
        # Exact per-type counts and per-type uniqueness (the collision set is
        # per link type, matching the historical sampler).
        for link_type in LINK_TYPES:
            group = [l for l in positives if l.link_type == link_type]
            got = [l.key() for l in negatives if l.link_type == link_type]
            assert len(got) == int(round(len(group) * 1.0))
            assert len(got) == len(set(got))

    @settings(max_examples=60, deadline=None)
    @given(positive_sets(), st.integers(0, 2**16))
    def test_endpoint_pools_preserved(self, case, seed):
        """Negatives re-pair endpoints from their link type's own pools."""
        n, positives = case
        try:
            negatives = permute_negative_links(positives, n, ratio=1.0,
                                               rng=default_rng(seed))
        except NegativeSamplingError:
            return
        for link_type in LINK_TYPES:
            group = [l for l in positives if l.link_type == link_type]
            sources = {l.source for l in group}
            targets = {l.target for l in group}
            for neg in (l for l in negatives if l.link_type == link_type):
                assert neg.source in sources
                assert neg.target in targets
                assert neg.label == 0.0 and neg.capacitance == 0.0

    @settings(max_examples=40, deadline=None)
    @given(positive_sets(), st.integers(0, 2**16))
    def test_deterministic_under_spawned_seeds(self, case, seed):
        """Identical (spawned) seed streams reproduce identical negatives."""
        n, positives = case
        children = np.random.SeedSequence(seed).spawn(2)

        def run(entropy):
            try:
                return permute_negative_links(positives, n, ratio=1.0,
                                              rng=default_rng(entropy))
            except NegativeSamplingError:
                return "raised"

        assert run(children[0]) == run(children[0])
        assert run(children[1]) == run(children[1])
        assert run(seed) == run(seed)

    @settings(max_examples=40, deadline=None)
    @given(positive_sets(), st.integers(0, 2**16))
    def test_avoid_links_never_emitted(self, case, seed):
        """Pairs listed in ``avoid`` are rejected like positives."""
        n, positives = case
        avoid = [Link(l.target, l.source, l.link_type) for l in positives[:3]]
        try:
            negatives = permute_negative_links(positives, n, ratio=0.5,
                                               rng=default_rng(seed), avoid=avoid)
        except NegativeSamplingError:
            return
        assert not (_keys(positives) | _keys(avoid)) & _keys(negatives)


class TestConditionedProperties:
    @settings(max_examples=50, deadline=None)
    @given(positive_sets(), st.integers(0, 2**16), st.integers(1, 3))
    def test_node_type_signature_preserved(self, case, seed, k):
        """Each corruption replaces an endpoint with a same-node-type node."""
        n, positives = case
        rng = default_rng(seed)
        node_types = rng.integers(0, 3, size=n)
        batches = conditioned_negatives(node_types, positives, k=k,
                                        rng=default_rng(seed), strict=False)
        for batch in batches:
            assert batch.neg_heads.shape == (batch.u.shape[0], k)
            assert batch.neg_tails.shape == (batch.v.shape[0], k)
            for i in range(batch.u.shape[0]):
                for head in batch.neg_heads[i]:
                    if head >= 0:
                        assert node_types[head] == node_types[batch.u[i]]
                for tail in batch.neg_tails[i]:
                    if tail >= 0:
                        assert node_types[tail] == node_types[batch.v[i]]

    @settings(max_examples=50, deadline=None)
    @given(positive_sets(), st.integers(0, 2**16))
    def test_uniform_negatives_avoid_observed_links(self, case, seed):
        n, positives = case
        node_types = np.zeros(n, dtype=np.int64)  # one big pool: always feasible
        negatives = uniform_negative_links(node_types, positives, k=1,
                                           rng=default_rng(seed), strict=False)
        assert not _keys(positives) & _keys(negatives)
        assert all(link.source != link.target for link in negatives)
        assert all(link.label == 0.0 for link in negatives)

    @settings(max_examples=30, deadline=None)
    @given(positive_sets(), st.integers(0, 2**16))
    def test_stratified_respects_type_and_determinism(self, case, seed):
        n, positives = case
        rng = default_rng(seed)
        node_types = rng.integers(0, 3, size=n)
        degrees = rng.integers(0, 12, size=n)

        def run():
            return stratified_negative_links(node_types, degrees, positives,
                                             k=1, bins=3, strict=False,
                                             rng=default_rng(seed))

        first, second = run(), run()
        assert first == second
        for neg in first:
            # A stratum refines the node type, so types still match some
            # endpoint of a same-type positive.
            assert not _keys(positives) & {neg.key()}

    def test_strict_exact_count_on_well_provisioned_graph(self):
        """Strict uniform corruption fills every slot when pools are ample."""
        n = 40
        node_types = np.zeros(n, dtype=np.int64)
        positives = [Link(i, i + 1, 4) for i in range(0, 10, 2)]
        batches = conditioned_negatives(node_types, positives, k=3,
                                        rng=default_rng(0), strict=True)
        (batch,) = batches
        assert batch.num_negatives == 2 * 3 * len(positives)
        assert (batch.neg_heads >= 0).all() and (batch.neg_tails >= 0).all()


class TestStrictModeRegression:
    """Satellite 1: duplicate collisions must not silently shrink the batch."""

    # A sparse graph where one round of rejection sampling (max_tries=1)
    # cannot deliver ratio=3.0, but plenty of feasible pairs exist.
    SPARSE = [Link(i, i + 1, 4) for i in range(0, 20, 2)]
    N = 21

    def test_non_strict_under_delivers_on_exhausted_budget(self):
        negatives = permute_negative_links(self.SPARSE, self.N, ratio=3.0,
                                           rng=default_rng(0), max_tries=1,
                                           strict=False)
        assert len(negatives) < 30  # the historical silent failure mode

    def test_strict_completes_to_exact_count(self):
        negatives = permute_negative_links(self.SPARSE, self.N, ratio=3.0,
                                           rng=default_rng(0), max_tries=1,
                                           strict=True)
        assert len(negatives) == 30
        keys = [l.key() for l in negatives]
        assert len(set(keys)) == 30
        assert not _keys(self.SPARSE) & set(keys)

    def test_strict_raises_actionably_on_complete_graph(self):
        """On a complete graph no negative exists: strict must say so."""
        n = 6
        positives = [Link(a, b, 4) for a in range(n) for b in range(a + 1, n)]
        with pytest.raises(NegativeSamplingError, match="cannot draw .*net-net"):
            permute_negative_links(positives, n, ratio=1.0, rng=default_rng(0))
        # Non-strict keeps the legacy behaviour: silently returns fewer.
        assert permute_negative_links(positives, n, ratio=1.0,
                                      rng=default_rng(0), strict=False) == []

    def test_strict_finds_the_only_feasible_pair_on_near_complete_graph(self):
        """K6 minus two edges: exactly one pair is reachable by re-pairing.

        ``(0, 1)`` cannot be produced — node 1 never appears as a target and
        node 0 never as a source among the remaining positives — so ``(2, 3)``
        is the single feasible negative.  Strict mode must find exactly it for
        ``wanted == 1`` and raise (reporting the true feasible count) for
        ``wanted == 2``.
        """
        n = 6
        positives = [Link(a, b, 4) for a in range(n) for b in range(a + 1, n)
                     if (a, b) not in {(0, 1), (2, 3)}]
        negatives = permute_negative_links(positives, n, ratio=1 / len(positives),
                                           rng=default_rng(0), max_tries=2)
        assert _keys(negatives) == {(2, 3)}
        with pytest.raises(NegativeSamplingError, match="only 1 distinct"):
            permute_negative_links(positives, n, ratio=2 / len(positives),
                                   rng=default_rng(0), max_tries=2)

    def test_strict_uniform_raises_when_pools_saturated(self):
        """Corrupting within one 3-clique of a 3-node type pool is infeasible."""
        node_types = np.array([1, 1, 1, 0, 0], dtype=np.int64)
        positives = [Link(0, 1, 3), Link(1, 2, 3), Link(0, 2, 3)]
        with pytest.raises(NegativeSamplingError, match="corruption slot"):
            conditioned_negatives(node_types, positives, k=1, rng=default_rng(0),
                                  strict=True, max_tries=5)
        batches = conditioned_negatives(node_types, positives, k=1,
                                        rng=default_rng(0), strict=False,
                                        max_tries=5)
        assert batches[0].num_negatives == 0
