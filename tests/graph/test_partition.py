"""Tests for graph partitioning and halo extraction (repro.graph.partition)."""

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    bfs_partition,
    edge_cut_fraction,
    halo_expand,
    induced_circuit_subgraph,
    netlist_to_graph,
)
from repro.netlist import ssram

from .test_csr import random_graph


class TestBfsPartition:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("num_parts", [1, 2, 4, 7])
    def test_partition_covers_all_nodes_with_valid_labels(self, seed, num_parts):
        graph = random_graph(80, 160, seed)
        parts = bfs_partition(graph.csr, num_parts)
        assert parts.shape == (80,)
        assert parts.min() >= 0 and parts.max() < num_parts

    @pytest.mark.parametrize("seed", [0, 5])
    def test_partition_is_roughly_balanced(self, seed):
        graph = random_graph(100, 220, seed)
        parts = bfs_partition(graph.csr, 4)
        sizes = np.bincount(parts, minlength=4)
        # Region growing targets ceil(remaining / remaining_parts) per part.
        assert sizes.max() - sizes.min() <= 2

    def test_partition_is_deterministic(self):
        graph = random_graph(64, 130, 3)
        a = bfs_partition(graph.csr, 3)
        b = bfs_partition(graph.csr, 3)
        np.testing.assert_array_equal(a, b)

    def test_partition_beats_random_split_on_edge_cut(self):
        graph = netlist_to_graph(ssram(rows=8, cols=4).flatten())
        parts = bfs_partition(graph.csr, 4)
        grown = edge_cut_fraction(graph.csr, parts)
        rng = np.random.default_rng(0)
        random_cut = edge_cut_fraction(
            graph.csr, rng.integers(0, 4, size=graph.num_nodes))
        assert grown < random_cut

    def test_disconnected_graph_is_fully_assigned(self):
        # Two components: 0-1-2 and 3-4; node 5 isolated.
        edge_index = np.array([[0, 1, 3], [1, 2, 4]])
        csr = CSRGraph.from_edges(6, edge_index)
        parts = bfs_partition(csr, 3)
        assert (parts >= 0).all()

    def test_more_parts_than_nodes_clamps(self):
        csr = CSRGraph.from_edges(3, np.array([[0, 1], [1, 2]]))
        parts = bfs_partition(csr, 10)
        assert (parts >= 0).all() and parts.max() < 3

    def test_empty_graph(self):
        csr = CSRGraph.from_edges(0, np.zeros((2, 0), dtype=np.int64))
        assert bfs_partition(csr, 4).shape == (0,)


class TestHaloExpand:
    def test_halo_matches_k_hop(self):
        graph = random_graph(60, 140, 4)
        owned = np.array([0, 5, 9])
        for hops in (1, 2):
            np.testing.assert_array_equal(
                halo_expand(graph.csr, owned, hops),
                graph.csr.k_hop(owned, hops))

    def test_halo_of_empty_set_is_empty(self):
        graph = random_graph(10, 20, 0)
        assert halo_expand(graph.csr, np.zeros(0, dtype=np.int64), 2).size == 0

    def test_halo_contains_owned_and_is_sorted(self):
        graph = random_graph(50, 100, 6)
        owned = np.array([7, 21, 33])
        halo = halo_expand(graph.csr, owned, 1)
        assert set(owned.tolist()) <= set(halo.tolist())
        assert (np.diff(halo) > 0).all()


class TestInducedCircuitSubgraph:
    def test_slices_names_types_stats_and_edges(self):
        graph = netlist_to_graph(ssram(rows=4, cols=2).flatten())
        nodes = halo_expand(graph.csr, np.arange(0, 30), 1)
        sub = induced_circuit_subgraph(graph, nodes)
        assert sub.name == graph.name
        assert sub.num_nodes == nodes.size
        assert sub.node_names == [graph.node_names[int(i)] for i in nodes]
        np.testing.assert_array_equal(sub.node_types, graph.node_types[nodes])
        np.testing.assert_array_equal(sub.node_stats, graph.node_stats[nodes])
        # Every local edge maps back to a global edge between the same nodes.
        for local_s, local_t in sub.edge_index.T[:50]:
            name_s = sub.node_names[int(local_s)]
            name_t = sub.node_names[int(local_t)]
            gs, gt = graph.node_index(name_s), graph.node_index(name_t)
            pair = {gs, gt}
            matches = [
                e for e in range(graph.num_edges)
                if {int(graph.edge_index[0][e]), int(graph.edge_index[1][e])} == pair
            ]
            assert matches

    def test_rejects_unsorted_nodes(self):
        graph = random_graph(20, 40, 1)
        with pytest.raises(ValueError, match="sorted"):
            induced_circuit_subgraph(graph, np.array([3, 1, 2]))

    def test_rejects_duplicate_nodes(self):
        graph = random_graph(20, 40, 1)
        with pytest.raises(ValueError, match="sorted"):
            induced_circuit_subgraph(graph, np.array([1, 1, 2]))


class TestEdgeCutFraction:
    def test_single_part_has_zero_cut(self):
        graph = random_graph(30, 60, 2)
        assert edge_cut_fraction(graph.csr, np.zeros(30, dtype=np.int64)) == 0.0

    def test_all_distinct_parts_cut_everything(self):
        csr = CSRGraph.from_edges(4, np.array([[0, 1, 2], [1, 2, 3]]))
        assert edge_cut_fraction(csr, np.arange(4)) == 1.0

    def test_empty_graph_is_zero(self):
        csr = CSRGraph.from_edges(3, np.zeros((2, 0), dtype=np.int64))
        assert edge_cut_fraction(csr, np.zeros(3, dtype=np.int64)) == 0.0
