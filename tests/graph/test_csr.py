"""Tests for the CSR graph kernel and its parity with the legacy Python path.

The vectorised extractors and encodings must produce *identical* subgraphs and
encodings to the original per-node-loop implementations (kept in
``repro.graph.legacy`` as the parity oracle), both on randomised graphs and on
a real design.
"""

import numpy as np
import pytest

from repro.graph import (
    CircuitGraph,
    CSRGraph,
    Link,
    extract_enclosing_subgraph,
    extract_enclosing_subgraphs,
    extract_node_subgraph,
    extract_node_subgraphs,
    generate_negative_links,
)
from repro.graph.encodings import (
    compute_pe_batch,
    drnl_encoding,
    dspd_encoding,
    laplacian_encoding,
    rwse_encoding,
)
from repro.graph.legacy import (
    legacy_drnl_encoding,
    legacy_dspd_encoding,
    legacy_extract_enclosing_subgraph,
    legacy_extract_node_subgraph,
    legacy_generate_negative_links,
    legacy_laplacian_encoding,
    legacy_rwse_encoding,
)


def random_graph(num_nodes: int, num_edges: int, seed: int) -> CircuitGraph:
    """A random multigraph wrapped as a CircuitGraph (types are arbitrary)."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    links = []
    for _ in range(max(4, num_edges // 4)):
        a, b = rng.integers(0, num_nodes, size=2)
        if a != b:
            links.append(Link(int(a), int(b), link_type=int(rng.integers(2, 5)),
                              capacitance=float(rng.random() * 1e-16)))
    return CircuitGraph(
        name=f"random-{seed}",
        node_types=rng.integers(0, 3, size=num_nodes),
        node_names=[f"n{i}" for i in range(num_nodes)],
        edge_index=np.stack([src, dst]),
        edge_types=rng.integers(0, 2, size=num_edges),
        node_stats=rng.random((num_nodes, 5)),
        links=links,
    )


# --------------------------------------------------------------------------- #
# Topology generators for the randomized parity sweep
# --------------------------------------------------------------------------- #
def _with_random_links(rng, num_nodes: int, edge_index: np.ndarray,
                       name: str) -> CircuitGraph:
    """Wrap an edge list as a CircuitGraph with random metadata and links."""
    num_edges = edge_index.shape[1]
    links = []
    for _ in range(6):
        a, b = rng.integers(0, num_nodes, size=2)
        if a != b:
            links.append(Link(int(a), int(b), link_type=int(rng.integers(2, 5)),
                              capacitance=float(rng.random() * 1e-16)))
    return CircuitGraph(
        name=name,
        node_types=rng.integers(0, 3, size=num_nodes),
        node_names=[f"n{i}" for i in range(num_nodes)],
        edge_index=edge_index,
        edge_types=rng.integers(0, 2, size=num_edges),
        node_stats=rng.random((num_nodes, 4)),
        links=links,
    )


def chain_topology(seed: int) -> CircuitGraph:
    """A simple path 0-1-...-n: every BFS layer has exactly one new node."""
    rng = np.random.default_rng([100, seed])
    n = int(rng.integers(8, 32))
    edges = np.stack([np.arange(n - 1), np.arange(1, n)])
    return _with_random_links(rng, n, edges, f"chain-{seed}")


def star_topology(seed: int) -> CircuitGraph:
    """A few hubs with many leaves: degree-skewed, diameter <= 4."""
    rng = np.random.default_rng([200, seed])
    hubs = int(rng.integers(1, 4))
    leaves_per_hub = int(rng.integers(5, 20))
    sources, targets = [], []
    next_node = hubs
    for hub in range(hubs):
        for _ in range(leaves_per_hub):
            sources.append(hub)
            targets.append(next_node)
            next_node += 1
        if hub:  # connect the hubs into a chain so the graph has one core
            sources.append(hub - 1)
            targets.append(hub)
    edges = np.array([sources, targets], dtype=np.int64)
    return _with_random_links(rng, next_node, edges, f"star-{seed}")


def disconnected_topology(seed: int) -> CircuitGraph:
    """Several random components with no edges between them."""
    rng = np.random.default_rng([300, seed])
    sources, targets = [], []
    offset = 0
    for _ in range(int(rng.integers(2, 5))):
        n = int(rng.integers(3, 12))
        m = int(rng.integers(n - 1, 2 * n))
        sources.extend((offset + rng.integers(0, n, size=m)).tolist())
        targets.extend((offset + rng.integers(0, n, size=m)).tolist())
        offset += n
    edges = np.array([sources, targets], dtype=np.int64)
    return _with_random_links(rng, offset, edges, f"disconnected-{seed}")


def multigraph_topology(seed: int) -> CircuitGraph:
    """A self-loop-free multigraph: parallel edges, no ``(i, i)`` edges."""
    rng = np.random.default_rng([400, seed])
    n = int(rng.integers(10, 40))
    m = int(rng.integers(2 * n, 4 * n))
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    collision = src == dst
    dst[collision] = (dst[collision] + 1 + rng.integers(0, n - 1, size=int(collision.sum()))) % n
    duplicates = rng.integers(0, m, size=m // 3)  # guarantee parallel edges
    src = np.concatenate([src, src[duplicates]])
    dst = np.concatenate([dst, dst[duplicates]])
    assert not (src == dst).any()
    edges = np.stack([src, dst])
    return _with_random_links(rng, n, edges, f"multigraph-{seed}")


TOPOLOGIES = {
    "chain": chain_topology,
    "star": star_topology,
    "disconnected": disconnected_topology,
    "multigraph": multigraph_topology,
}


class TestCSRGraph:
    def test_known_small_graph(self):
        # Path 0-1-2 plus edge 0-2: every node has degree 2.
        edge_index = np.array([[0, 1, 0], [1, 2, 2]])
        csr = CSRGraph.from_edges(3, edge_index)
        assert csr.num_nodes == 3
        assert csr.num_edges == 3
        np.testing.assert_array_equal(csr.degrees(), [2, 2, 2])
        assert set(csr.neighbors(0).tolist()) == {1, 2}
        assert set(csr.neighbors(1).tolist()) == {0, 2}

    def test_empty_graph(self):
        csr = CSRGraph.from_edges(4, np.zeros((2, 0), dtype=np.int64))
        assert csr.num_nodes == 4
        np.testing.assert_array_equal(csr.degrees(), np.zeros(4))
        assert csr.k_hop([2], 3).tolist() == [2]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bfs_matches_dict_bfs(self, seed):
        graph = random_graph(60, 120, seed)
        csr = graph.csr
        for source in (0, 17, 42):
            distances = csr.bfs_distances(source, unreachable=-1)
            # Reference: plain dict BFS.
            ref = {source: 0}
            frontier = [source]
            while frontier:
                nxt = []
                for node in frontier:
                    for neighbour in csr.neighbors(node):
                        if int(neighbour) not in ref:
                            ref[int(neighbour)] = ref[node] + 1
                            nxt.append(int(neighbour))
                frontier = nxt
            for node in range(csr.num_nodes):
                assert distances[node] == ref.get(node, -1)

    @pytest.mark.parametrize("seed", [3, 4])
    def test_k_hop_matches_set_expansion(self, seed):
        graph = random_graph(50, 90, seed)
        csr = graph.csr
        for hops in (1, 2, 3):
            visited = {5, 11}
            frontier = {5, 11}
            for _ in range(hops):
                frontier = {int(m) for node in frontier for m in csr.neighbors(node)} - visited
                visited |= frontier
            np.testing.assert_array_equal(csr.k_hop([5, 11], hops), sorted(visited))

    def test_induced_subgraph_picks_internal_edges_only(self):
        graph = random_graph(40, 80, 7)
        nodes = np.array([3, 8, 15, 22, 31])
        local_edges, picked = graph.csr.induced_subgraph(nodes)
        node_set = set(nodes.tolist())
        for edge_id in picked:
            s, t = graph.edge_index[0][edge_id], graph.edge_index[1][edge_id]
            assert int(s) in node_set and int(t) in node_set
        # All internal edges picked, in ascending id order.
        expected = [e for e in range(graph.num_edges)
                    if int(graph.edge_index[0][e]) in node_set
                    and int(graph.edge_index[1][e]) in node_set]
        assert picked.tolist() == expected
        if local_edges.size:
            assert local_edges.max() < len(nodes)

    def test_max_per_node_caps_expansion(self):
        graph = random_graph(30, 400, 9)  # dense: high degrees
        csr = graph.csr
        full = csr.k_hop([0], 1)
        capped = csr.k_hop([0], 1, max_nodes_per_hop=3, rng=0)
        assert len(capped) <= min(len(full), 1 + 3)
        assert set(capped.tolist()) <= set(full.tolist())


class TestExtractionParity:
    @pytest.mark.parametrize("seed", [10, 11, 12, 13])
    @pytest.mark.parametrize("hops", [1, 2])
    def test_enclosing_subgraph_matches_legacy(self, seed, hops):
        graph = random_graph(80, 160, seed)
        for link in graph.links[:10]:
            new = extract_enclosing_subgraph(graph, link, hops=hops)
            old = legacy_extract_enclosing_subgraph(graph, link, hops=hops)
            np.testing.assert_array_equal(new.node_ids, old.node_ids)
            np.testing.assert_array_equal(new.edge_index, old.edge_index)
            np.testing.assert_array_equal(new.edge_types, old.edge_types)
            np.testing.assert_array_equal(new.node_types, old.node_types)
            np.testing.assert_allclose(new.node_stats, old.node_stats)
            assert new.anchors == old.anchors
            assert new.label == old.label and new.target == old.target

    @pytest.mark.parametrize("seed", [14, 15])
    @pytest.mark.parametrize("hops", [1, 2])
    def test_batched_extraction_matches_legacy(self, seed, hops):
        graph = random_graph(70, 140, seed)
        batched = extract_enclosing_subgraphs(graph, graph.links, hops=hops,
                                              add_target_edge=False)
        assert len(batched) == len(graph.links)
        for link, new in zip(graph.links, batched):
            old = legacy_extract_enclosing_subgraph(graph, link, hops=hops,
                                                    add_target_edge=False)
            np.testing.assert_array_equal(new.node_ids, old.node_ids)
            np.testing.assert_array_equal(new.edge_index, old.edge_index)
            np.testing.assert_array_equal(new.edge_types, old.edge_types)

    @pytest.mark.parametrize("seed", [16, 17])
    def test_node_subgraphs_match_legacy(self, seed):
        graph = random_graph(60, 110, seed)
        nodes = list(range(0, graph.num_nodes, 7))
        batched = extract_node_subgraphs(graph, nodes, hops=2)
        for node, new in zip(nodes, batched):
            single = extract_node_subgraph(graph, node, hops=2)
            old = legacy_extract_node_subgraph(graph, node, hops=2)
            for candidate in (new, single):
                np.testing.assert_array_equal(candidate.node_ids, old.node_ids)
                np.testing.assert_array_equal(candidate.edge_index, old.edge_index)
                assert candidate.anchors == (0, 0)

    def test_real_design_parity(self, small_design):
        graph = small_design.graph
        links = graph.links[:30]
        batched = extract_enclosing_subgraphs(graph, links, hops=1)
        for link, new in zip(links, batched):
            old = legacy_extract_enclosing_subgraph(graph, link, hops=1)
            np.testing.assert_array_equal(new.node_ids, old.node_ids)
            np.testing.assert_array_equal(new.edge_index, old.edge_index)
            np.testing.assert_array_equal(new.edge_types, old.edge_types)


class TestEncodingParity:
    @pytest.mark.parametrize("seed", [20, 21, 22])
    def test_all_encodings_match_legacy(self, seed):
        graph = random_graph(50, 100, seed)
        for link in graph.links[:8]:
            subgraph = extract_enclosing_subgraph(graph, link, hops=2)
            np.testing.assert_allclose(dspd_encoding(subgraph), legacy_dspd_encoding(subgraph))
            np.testing.assert_allclose(drnl_encoding(subgraph), legacy_drnl_encoding(subgraph))
            np.testing.assert_allclose(rwse_encoding(subgraph), legacy_rwse_encoding(subgraph))
            np.testing.assert_allclose(laplacian_encoding(subgraph),
                                       legacy_laplacian_encoding(subgraph))

    @pytest.mark.parametrize("kind", ["dspd", "drnl"])
    def test_batched_pe_matches_per_subgraph(self, kind):
        graph = random_graph(60, 120, 23)
        subgraphs = extract_enclosing_subgraphs(graph, graph.links[:12], hops=2)
        legacy_fn = legacy_dspd_encoding if kind == "dspd" else legacy_drnl_encoding
        encodings = compute_pe_batch(subgraphs, kind)
        for subgraph, encoding in zip(subgraphs, encodings):
            np.testing.assert_allclose(encoding, legacy_fn(subgraph))
            assert subgraph.pe is encoding

    def test_hub_degree_over_256_no_wraparound(self):
        # A star with 300 leaves: the dense BFS frontier product must not wrap
        # in a narrow integer dtype (a node adjacent to a multiple-of-256
        # frontier would silently look unreachable).
        from repro.graph import Subgraph

        leaves = 300
        hub_a, hub_b = 0, 1
        src = np.concatenate([[hub_a], np.full(leaves, hub_b)])
        dst = np.concatenate([[hub_b], np.arange(2, leaves + 2)])
        subgraph = Subgraph(
            node_ids=np.arange(leaves + 2),
            node_types=np.zeros(leaves + 2, dtype=np.int64),
            edge_index=np.stack([src, dst]),
            edge_types=np.zeros(leaves + 1, dtype=np.int64),
            anchors=(hub_a, hub_b),
        )
        np.testing.assert_allclose(dspd_encoding(subgraph), legacy_dspd_encoding(subgraph))
        np.testing.assert_allclose(drnl_encoding(subgraph), legacy_drnl_encoding(subgraph))

    def test_disconnected_anchor_buckets(self):
        # Two components: anchors in one, an isolated pair in the other.
        graph = CircuitGraph(
            name="two-islands",
            node_types=np.zeros(5, dtype=np.int64),
            node_names=[f"n{i}" for i in range(5)],
            edge_index=np.array([[0, 3], [1, 4]]),
            edge_types=np.zeros(2, dtype=np.int64),
            links=[Link(0, 1, 2)],
        )
        subgraph = extract_enclosing_subgraph(graph, graph.links[0], hops=1,
                                              add_target_edge=False)
        np.testing.assert_allclose(dspd_encoding(subgraph),
                                   legacy_dspd_encoding(subgraph))
        np.testing.assert_allclose(drnl_encoding(subgraph),
                                   legacy_drnl_encoding(subgraph))


class TestTopologySweepParity:
    """Randomized CSR-vs-legacy sweep: 20 seeded graphs per topology family.

    Chains exercise deep BFS layering, stars exercise degree skew and the
    hub-subsampling caps, disconnected graphs exercise unreachable-node
    bucketing, and self-loop-free multigraphs exercise parallel-edge
    handling — each against the pure-Python legacy oracle.
    """

    @pytest.mark.parametrize("seed", range(20))
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    def test_extraction_and_encodings_match_legacy(self, topology, seed):
        graph = TOPOLOGIES[topology](seed)
        assert graph.links, f"{topology}-{seed} generated no links"
        for link in graph.links[:3]:
            new = extract_enclosing_subgraph(graph, link, hops=2)
            old = legacy_extract_enclosing_subgraph(graph, link, hops=2)
            np.testing.assert_array_equal(new.node_ids, old.node_ids)
            np.testing.assert_array_equal(new.edge_index, old.edge_index)
            np.testing.assert_array_equal(new.edge_types, old.edge_types)
            np.testing.assert_array_equal(new.node_types, old.node_types)
            assert new.anchors == old.anchors
            np.testing.assert_allclose(dspd_encoding(new), legacy_dspd_encoding(old))
            np.testing.assert_allclose(drnl_encoding(new), legacy_drnl_encoding(old))

    @pytest.mark.parametrize("seed", range(0, 20, 4))
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    def test_batched_extraction_matches_legacy(self, topology, seed):
        graph = TOPOLOGIES[topology](seed)
        batched = extract_enclosing_subgraphs(graph, graph.links, hops=1,
                                              add_target_edge=False)
        for link, new in zip(graph.links, batched):
            old = legacy_extract_enclosing_subgraph(graph, link, hops=1,
                                                    add_target_edge=False)
            np.testing.assert_array_equal(new.node_ids, old.node_ids)
            np.testing.assert_array_equal(new.edge_index, old.edge_index)
            np.testing.assert_array_equal(new.edge_types, old.edge_types)

    @pytest.mark.parametrize("seed", range(0, 20, 4))
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    def test_bfs_distances_match_dict_bfs(self, topology, seed):
        graph = TOPOLOGIES[topology](seed)
        csr = graph.csr
        topology_index = sorted(TOPOLOGIES).index(topology)
        source = int(np.random.default_rng([topology_index, seed]).integers(csr.num_nodes))
        distances = csr.bfs_distances(source, unreachable=-1)
        ref = {source: 0}
        frontier = [source]
        while frontier:
            nxt = []
            for node in frontier:
                for neighbour in csr.neighbors(node):
                    if int(neighbour) not in ref:
                        ref[int(neighbour)] = ref[node] + 1
                        nxt.append(int(neighbour))
            frontier = nxt
        for node in range(csr.num_nodes):
            assert distances[node] == ref.get(node, -1)


class TestNegativeSamplingParity:
    @pytest.mark.parametrize("seed", [30, 31])
    def test_same_invariants_as_legacy(self, seed):
        graph = random_graph(80, 150, seed)
        new = generate_negative_links(graph, ratio=1.0, rng=seed)
        old = legacy_generate_negative_links(graph, ratio=1.0, rng=seed)
        positive_keys = {l.key() for l in graph.links}
        for negatives in (new, old):
            keys = [l.key() for l in negatives]
            assert len(keys) == len(set(keys))          # no duplicates
            assert not (set(keys) & positive_keys)      # no collision with positives
            assert all(l.label == 0.0 and l.capacitance == 0.0 for l in negatives)
        # Endpoints are drawn from the same per-type endpoint pools.
        by_type = {}
        for link in graph.links:
            pools = by_type.setdefault(link.link_type, (set(), set()))
            pools[0].add(link.source)
            pools[1].add(link.target)
        for link in new:
            sources, targets = by_type[link.link_type]
            assert link.source in sources and link.target in targets

    def test_counts_match_legacy(self, small_design):
        graph = small_design.graph
        new = generate_negative_links(graph, ratio=0.5, rng=0)
        old = legacy_generate_negative_links(graph, ratio=0.5, rng=0)
        assert len(new) == len(old)

    def test_deterministic_given_seed(self, small_design):
        a = generate_negative_links(small_design.graph, ratio=0.5, rng=3)
        b = generate_negative_links(small_design.graph, ratio=0.5, rng=3)
        assert [l.key() for l in a] == [l.key() for l in b]


class TestPickleRoundtrip:
    """``__getstate__`` ships only the edge list; ``__setstate__`` must
    rebuild an identical adjacency for every degenerate topology."""

    @staticmethod
    def _roundtrip(csr: CSRGraph) -> CSRGraph:
        import pickle

        return pickle.loads(pickle.dumps(csr))

    @staticmethod
    def _assert_identical(a: CSRGraph, b: CSRGraph) -> None:
        assert b.num_nodes == a.num_nodes
        assert b.num_edges == a.num_edges
        np.testing.assert_array_equal(b.indptr, a.indptr)
        np.testing.assert_array_equal(b.indices, a.indices)
        np.testing.assert_array_equal(b.edge_ids, a.edge_ids)
        np.testing.assert_array_equal(b.edge_index, a.edge_index)
        np.testing.assert_array_equal(b.edge_types, a.edge_types)

    def test_empty_graph_roundtrip(self):
        csr = CSRGraph.from_edges(0, np.zeros((2, 0), dtype=np.int64))
        restored = self._roundtrip(csr)
        self._assert_identical(csr, restored)
        assert restored.degrees().tolist() == []

    def test_edgeless_nodes_roundtrip(self):
        csr = CSRGraph.from_edges(5, np.zeros((2, 0), dtype=np.int64))
        restored = self._roundtrip(csr)
        self._assert_identical(csr, restored)
        np.testing.assert_array_equal(restored.degrees(), np.zeros(5))

    def test_isolated_nodes_among_connected_roundtrip(self):
        # Nodes 2 and 5 never appear in the edge list.
        edge_index = np.array([[0, 1, 3], [1, 3, 4]])
        csr = CSRGraph.from_edges(6, edge_index)
        restored = self._roundtrip(csr)
        self._assert_identical(csr, restored)
        assert restored.neighbors(2).tolist() == []
        assert restored.neighbors(5).tolist() == []
        assert restored.k_hop([2], 2).tolist() == [2]

    def test_self_loops_roundtrip(self):
        edge_index = np.array([[0, 1, 2, 2], [0, 2, 1, 2]])
        csr = CSRGraph.from_edges(3, edge_index)
        restored = self._roundtrip(csr)
        self._assert_identical(csr, restored)
        np.testing.assert_array_equal(restored.degrees(), csr.degrees())
        np.testing.assert_array_equal(restored.bfs_distances(0, unreachable=-1),
                                      csr.bfs_distances(0, unreachable=-1))

    def test_edge_types_survive_roundtrip(self):
        edge_index = np.array([[0, 1], [1, 2]])
        edge_types = np.array([3, 7], dtype=np.int64)
        csr = CSRGraph.from_edges(3, edge_index, edge_types)
        restored = self._roundtrip(csr)
        self._assert_identical(csr, restored)
