"""Tests for the heterogeneous CircuitGraph container."""

import numpy as np
import pytest

from repro.graph import (
    EDGE_DEVICE_PIN,
    EDGE_NET_PIN,
    LINK_NET_NET,
    NODE_DEVICE,
    NODE_NET,
    NODE_PIN,
    CircuitGraph,
    Link,
)


def _path_graph():
    """net0 - pin0 - dev0 - pin1 - net1 (a simple path with correct typing)."""
    node_types = np.array([NODE_NET, NODE_PIN, NODE_DEVICE, NODE_PIN, NODE_NET])
    names = ["net0", "M1:A", "M1", "M1:B", "net1"]
    edge_index = np.array([[0, 2, 2, 4], [1, 1, 3, 3]])
    edge_types = np.array([EDGE_NET_PIN, EDGE_DEVICE_PIN, EDGE_DEVICE_PIN, EDGE_NET_PIN])
    return CircuitGraph(name="path", node_types=node_types, node_names=names,
                        edge_index=edge_index, edge_types=edge_types)


class TestBasics:
    def test_counts(self):
        graph = _path_graph()
        assert graph.num_nodes == 5
        assert graph.num_edges == 4
        assert graph.num_links == 0

    def test_node_index_lookup(self):
        graph = _path_graph()
        assert graph.node_index("M1") == 2
        assert graph.has_node("net1")
        assert not graph.has_node("nope")
        with pytest.raises(KeyError):
            graph.node_index("nope")

    def test_nodes_of_type(self):
        graph = _path_graph()
        np.testing.assert_array_equal(graph.nodes_of_type(NODE_NET), [0, 4])
        np.testing.assert_array_equal(graph.nodes_of_type(NODE_PIN), [1, 3])

    def test_summary(self):
        graph = _path_graph()
        graph.links.append(Link(0, 4, LINK_NET_NET, 1.0, 1e-16))
        summary = graph.summary()
        assert summary["num_nets"] == 2
        assert summary["num_links"] == 1
        assert summary["links_by_type"] == {"net-net": 1}


class TestValidation:
    def test_valid_graph_passes(self):
        _path_graph().validate()

    def test_edge_out_of_range_fails(self):
        graph = _path_graph()
        graph.edge_index = np.array([[0], [99]])
        graph.edge_types = np.array([EDGE_NET_PIN])
        with pytest.raises(ValueError):
            graph.validate()

    def test_edge_type_length_mismatch_fails(self):
        graph = _path_graph()
        graph.edge_types = graph.edge_types[:-1]
        with pytest.raises(ValueError):
            graph.validate()

    def test_wrong_node_type_pairing_fails(self):
        graph = _path_graph()
        # A device-pin edge directly between two nets is invalid.
        graph.edge_index = np.array([[0], [4]])
        graph.edge_types = np.array([EDGE_DEVICE_PIN])
        with pytest.raises(ValueError):
            graph.validate()

    def test_link_out_of_range_fails(self):
        graph = _path_graph()
        graph.links.append(Link(0, 50, LINK_NET_NET))
        with pytest.raises(ValueError):
            graph.validate()


class TestAdjacency:
    def test_neighbors_are_symmetric(self):
        graph = _path_graph()
        assert 1 in graph.neighbors(0)
        assert 0 in graph.neighbors(1)

    def test_degrees(self):
        graph = _path_graph()
        degrees = graph.degree()
        np.testing.assert_array_equal(degrees, [1, 2, 2, 2, 1])
        assert graph.degree(2) == 2

    def test_k_hop_nodes(self):
        graph = _path_graph()
        np.testing.assert_array_equal(graph.k_hop_nodes([0], 1), [0, 1])
        np.testing.assert_array_equal(graph.k_hop_nodes([0], 2), [0, 1, 2])
        np.testing.assert_array_equal(graph.k_hop_nodes([0], 10), [0, 1, 2, 3, 4])

    def test_shortest_path_lengths(self):
        graph = _path_graph()
        distances = graph.shortest_path_lengths(0)
        assert distances[4] == 4
        bounded = graph.shortest_path_lengths(0, max_distance=2)
        assert 4 not in bounded

    def test_link_key_is_order_insensitive(self):
        assert Link(3, 1, LINK_NET_NET).key() == Link(1, 3, LINK_NET_NET).key()


class TestRealGraph:
    def test_matches_networkx_shortest_paths(self, small_design):
        """Cross-check BFS distances against networkx on a real circuit graph."""
        import networkx as nx

        graph = small_design.graph
        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(graph.num_nodes))
        nx_graph.add_edges_from(graph.edge_index.T.tolist())
        source = int(graph.nodes_of_type(NODE_NET)[0])
        expected = nx.single_source_shortest_path_length(nx_graph, source)
        actual = graph.shortest_path_lengths(source)
        assert actual == dict(expected)
