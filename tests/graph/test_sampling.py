"""Tests for negative-link generation, balancing and enclosing-subgraph sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    LINK_NET_NET,
    LINK_PIN_NET,
    LINK_PIN_PIN,
    Link,
    balance_links,
    extract_enclosing_subgraph,
    extract_node_subgraph,
    generate_negative_links,
    inject_link_edges,
    link_type_histogram,
    sample_link_dataset,
)


class TestNegativeLinks:
    def test_negatives_not_positives(self, small_design):
        graph = small_design.graph
        negatives = generate_negative_links(graph, ratio=0.5, rng=0)
        positive_keys = {l.key() for l in graph.links}
        assert negatives
        assert all(n.key() not in positive_keys for n in negatives)

    def test_negatives_have_zero_label_and_cap(self, small_design):
        negatives = generate_negative_links(small_design.graph, ratio=0.2, rng=0)
        assert all(n.label == 0.0 and n.capacitance == 0.0 for n in negatives)

    def test_negatives_preserve_link_type_distribution(self, small_design):
        graph = small_design.graph
        negatives = generate_negative_links(graph, ratio=1.0, rng=0)
        pos_hist = link_type_histogram(graph.links)
        neg_hist = link_type_histogram(negatives)
        assert set(neg_hist) <= set(pos_hist)
        for kind, count in neg_hist.items():
            assert count <= pos_hist[kind]

    def test_negative_ratio_controls_count(self, small_design):
        graph = small_design.graph
        half = generate_negative_links(graph, ratio=0.5, rng=0)
        full = generate_negative_links(graph, ratio=1.0, rng=0)
        assert len(full) > len(half)

    def test_negatives_endpoint_types_match_link_type(self, small_design):
        graph = small_design.graph
        negatives = generate_negative_links(graph, ratio=0.3, rng=0)
        for link in negatives:
            types = sorted((graph.node_types[link.source], graph.node_types[link.target]))
            if link.link_type == LINK_NET_NET:
                assert types == [0, 0]
            elif link.link_type == LINK_PIN_NET:
                assert types == [0, 2]
            elif link.link_type == LINK_PIN_PIN:
                assert types == [2, 2]


class TestBalanceLinks:
    def test_balanced_counts_equal_smallest_class(self):
        links = ([Link(0, 1, LINK_PIN_NET)] * 50 + [Link(2, 3, LINK_PIN_PIN)] * 20
                 + [Link(4, 5, LINK_NET_NET)] * 5)
        balanced = balance_links(links, rng=0)
        hist = link_type_histogram(balanced)
        assert set(hist.values()) == {5}

    def test_explicit_budget(self):
        links = [Link(0, 1, LINK_PIN_NET)] * 50 + [Link(2, 3, LINK_NET_NET)] * 30
        balanced = balance_links(links, per_type=10, rng=0)
        assert len(balanced) == 20

    def test_empty_input(self):
        assert balance_links([], rng=0) == []


class TestEnclosingSubgraph:
    def test_anchors_are_first_two_nodes(self, small_design):
        graph = small_design.graph
        link = graph.links[0]
        subgraph = extract_enclosing_subgraph(graph, link, hops=1)
        assert subgraph.anchors == (0, 1)
        assert subgraph.node_ids[0] == link.source
        assert subgraph.node_ids[1] == link.target
        subgraph.validate()

    def test_contains_one_hop_neighbourhood(self, small_design):
        graph = small_design.graph
        link = graph.links[0]
        subgraph = extract_enclosing_subgraph(graph, link, hops=1, add_target_edge=False)
        expected = set(graph.neighbors(link.source).tolist()) | \
            set(graph.neighbors(link.target).tolist()) | {link.source, link.target}
        assert set(subgraph.node_ids.tolist()) == expected

    def test_two_hops_superset_of_one_hop(self, small_design):
        graph = small_design.graph
        link = graph.links[1]
        one = extract_enclosing_subgraph(graph, link, hops=1, add_target_edge=False)
        two = extract_enclosing_subgraph(graph, link, hops=2, add_target_edge=False)
        assert set(one.node_ids.tolist()) <= set(two.node_ids.tolist())

    def test_target_edge_added_between_anchors(self, small_design):
        graph = small_design.graph
        link = graph.links[0]
        subgraph = extract_enclosing_subgraph(graph, link, hops=1, add_target_edge=True)
        pairs = set(map(tuple, subgraph.edge_index.T.tolist()))
        assert (0, 1) in pairs or (1, 0) in pairs
        assert subgraph.edge_types[-1] == link.link_type

    def test_edge_types_preserved(self, small_design):
        graph = small_design.graph
        link = graph.links[0]
        subgraph = extract_enclosing_subgraph(graph, link, hops=1, add_target_edge=False)
        for (s, t), edge_type in zip(subgraph.edge_index.T, subgraph.edge_types):
            assert edge_type in (0, 1)
            global_s, global_t = subgraph.node_ids[s], subgraph.node_ids[t]
            assert global_t in graph.neighbors(global_s)

    def test_max_nodes_per_hop_caps_size(self, small_design):
        graph = small_design.graph
        link = graph.links[0]
        capped = extract_enclosing_subgraph(graph, link, hops=2, max_nodes_per_hop=3, rng=0)
        full = extract_enclosing_subgraph(graph, link, hops=2, rng=0)
        assert capped.num_nodes <= full.num_nodes

    def test_label_and_target_copied(self, small_design):
        graph = small_design.graph
        link = graph.links[0]
        subgraph = extract_enclosing_subgraph(graph, link)
        assert subgraph.label == 1.0
        assert subgraph.target == pytest.approx(link.capacitance)
        assert subgraph.link_type == link.link_type

    def test_node_stats_sliced(self, small_design):
        graph = small_design.graph
        subgraph = extract_enclosing_subgraph(graph, graph.links[0])
        np.testing.assert_allclose(subgraph.node_stats,
                                   graph.node_stats[subgraph.node_ids])


class TestNodeSubgraph:
    def test_single_anchor(self, small_design):
        graph = small_design.graph
        node = int(graph.nodes_of_type(0)[0])
        subgraph = extract_node_subgraph(graph, node, hops=2, target=0.5)
        assert subgraph.anchors == (0, 0)
        assert subgraph.node_ids[0] == node
        assert subgraph.target == 0.5
        subgraph.validate()

    def test_contains_two_hop_ball(self, small_design):
        graph = small_design.graph
        node = int(graph.nodes_of_type(0)[1])
        subgraph = extract_node_subgraph(graph, node, hops=2)
        expected = set(graph.k_hop_nodes([node], 2).tolist())
        assert set(subgraph.node_ids.tolist()) == expected


class TestInjection:
    def test_injected_edges_added(self, small_design):
        graph = small_design.graph
        injected = inject_link_edges(graph, graph.links[:10])
        assert injected.num_edges == graph.num_edges + 10
        assert injected.num_nodes == graph.num_nodes

    def test_injection_with_empty_list_returns_same_graph(self, small_design):
        graph = small_design.graph
        assert inject_link_edges(graph, []) is graph

    def test_original_graph_untouched(self, small_design):
        graph = small_design.graph
        before = graph.num_edges
        inject_link_edges(graph, graph.links[:5])
        assert graph.num_edges == before


class TestSampleLinkDataset:
    def test_balanced_positive_negative_split(self, small_design):
        samples = sample_link_dataset(small_design.graph, max_links=60, rng=0)
        labels = np.array([s.label for s in samples])
        assert 0.4 <= labels.mean() <= 0.6
        assert len(samples) > 60

    def test_max_links_caps_positives(self, small_design):
        samples = sample_link_dataset(small_design.graph, max_links=30, rng=0)
        positives = sum(1 for s in samples if s.label == 1.0)
        assert positives <= 30

    def test_injected_sampling_gives_larger_subgraphs(self, small_design):
        plain = sample_link_dataset(small_design.graph, max_links=30, inject_links=False, rng=0)
        injected = sample_link_dataset(small_design.graph, max_links=30, inject_links=True, rng=0)
        assert np.mean([s.num_edges for s in injected]) > np.mean([s.num_edges for s in plain])

    def test_all_samples_validate(self, small_design):
        for sample in sample_link_dataset(small_design.graph, max_links=20, rng=0):
            sample.validate()


@settings(max_examples=5, deadline=None)
@given(max_links=st.integers(5, 40))
def test_sampling_positive_cap_property(max_links):
    from repro.netlist import ssram, place_circuit, extract_parasitics
    from repro.graph import netlist_to_graph

    # Build once and memoise on the function object.
    if not hasattr(test_sampling_positive_cap_property, "_graph"):
        circuit = ssram(rows=3, cols=3).flatten()
        placement = place_circuit(circuit, rng=0)
        report = extract_parasitics(placement, rng=1)
        test_sampling_positive_cap_property._graph = netlist_to_graph(circuit, report)
    graph = test_sampling_positive_cap_property._graph
    samples = sample_link_dataset(graph, max_links=max_links, rng=0)
    positives = sum(1 for s in samples if s.label == 1.0)
    assert positives <= max_links
