"""Tests for netlist-to-graph conversion and parasitic attachment."""

import numpy as np
import pytest

from repro.graph import (
    EDGE_DEVICE_PIN,
    EDGE_NET_PIN,
    LINK_TYPE_NAMES,
    NODE_DEVICE,
    NODE_NET,
    NODE_PIN,
    netlist_to_graph,
)
from repro.netlist import Circuit, extract_parasitics, place_circuit, ssram


@pytest.fixture(scope="module")
def pipeline():
    circuit = ssram(rows=3, cols=3).flatten()
    placement = place_circuit(circuit, rng=0)
    report = extract_parasitics(placement, rng=1)
    graph = netlist_to_graph(circuit, report)
    return circuit, report, graph


class TestStructure:
    def test_graph_validates(self, pipeline):
        _, _, graph = pipeline
        graph.validate()

    def test_node_counts(self, pipeline):
        circuit, _, graph = pipeline
        stats = circuit.stats()
        assert int((graph.node_types == NODE_DEVICE).sum()) == stats.num_devices
        assert int((graph.node_types == NODE_PIN).sum()) == stats.num_pins
        signal_nets = [n for n in circuit.nets if not Circuit.is_power_rail(n)]
        assert int((graph.node_types == NODE_NET).sum()) == len(signal_nets)

    def test_power_nets_excluded_by_default(self, pipeline):
        _, _, graph = pipeline
        assert not graph.has_node("VDD")
        assert not graph.has_node("VSS")

    def test_power_nets_included_on_request(self, pipeline):
        circuit, _, _ = pipeline
        graph = netlist_to_graph(circuit, include_power_nets=True, with_stats=False)
        assert graph.has_node("VDD")

    def test_every_device_pin_edge_exists(self, pipeline):
        circuit, _, graph = pipeline
        device_pin_edges = int((graph.edge_types == EDGE_DEVICE_PIN).sum())
        assert device_pin_edges == sum(len(d.terminals) for d in circuit.devices)

    def test_net_pin_edges_only_for_signal_nets(self, pipeline):
        circuit, _, graph = pipeline
        expected = sum(
            1 for d in circuit.devices for _, net in d.terminal_items()
            if not Circuit.is_power_rail(net)
        )
        assert int((graph.edge_types == EDGE_NET_PIN).sum()) == expected

    def test_pin_nodes_named_device_colon_terminal(self, pipeline):
        circuit, _, graph = pipeline
        device = circuit.devices[0]
        terminal = next(iter(device.terminals))
        assert graph.has_node(f"{device.name}:{terminal}")

    def test_stats_matrix_attached(self, pipeline):
        _, _, graph = pipeline
        assert graph.node_stats is not None
        assert graph.node_stats.shape == (graph.num_nodes, 13)


class TestParasiticAttachment:
    def test_links_created_for_all_kinds(self, pipeline):
        _, report, graph = pipeline
        names = {LINK_TYPE_NAMES[l.link_type] for l in graph.links}
        assert names == {"net-net", "pin-net", "pin-pin"}

    def test_link_count_not_more_than_couplings(self, pipeline):
        _, report, graph = pipeline
        assert 0 < len(graph.links) <= len(report.couplings)

    def test_links_have_positive_capacitance(self, pipeline):
        _, _, graph = pipeline
        assert all(l.capacitance > 0 for l in graph.links)
        assert all(l.label == 1.0 for l in graph.links)

    def test_duplicate_couplings_merged(self, pipeline):
        _, _, graph = pipeline
        keys = [l.key() for l in graph.links]
        assert len(keys) == len(set(keys))

    def test_ground_caps_attached(self, pipeline):
        _, report, graph = pipeline
        assert graph.node_ground_caps is not None
        net = next(iter(report.net_ground_caps))
        assert graph.node_ground_caps[graph.node_index(net)] == pytest.approx(
            report.net_ground_caps[net])

    def test_no_self_links(self, pipeline):
        _, _, graph = pipeline
        assert all(l.source != l.target for l in graph.links)

    def test_hierarchical_input_flattened(self):
        graph = netlist_to_graph(ssram(rows=2, cols=2), with_stats=False)
        assert graph.num_nodes > 0
