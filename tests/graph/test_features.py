"""Tests for the Table-I circuit-statistics matrix X_C."""

import numpy as np
import pytest

from repro.graph import NODE_DEVICE, NODE_NET, NODE_PIN, STATS_DIM, compute_node_stats, normalize_stats
from repro.graph.features import PIN_TYPE_CODES
from repro.netlist import Capacitor, Circuit, Mosfet, Resistor


@pytest.fixture()
def simple_circuit():
    circuit = Circuit("demo", ports=["in", "out"])
    circuit.add(Mosfet("M1", {"D": "out", "G": "in", "S": "VSS", "B": "VSS"},
                       polarity="nmos", width=200e-9, length=40e-9, multiplier=2))
    circuit.add(Mosfet("M2", {"D": "out", "G": "in", "S": "VDD", "B": "VDD"},
                       polarity="pmos", width=400e-9, length=40e-9))
    circuit.add(Resistor("R1", {"P": "out", "N": "mid"}, resistance=1e3,
                         width=300e-9, length=2e-6))
    circuit.add(Capacitor("C1", {"P": "mid", "N": "VSS"}, capacitance=1e-15,
                          fingers=6, length=3e-6))
    return circuit


def _stats_for(circuit, name, node_type):
    names = [name]
    types = np.array([node_type])
    return compute_node_stats(circuit, names, types)[0]


class TestNetStats:
    def test_transistor_counts_and_terminals(self, simple_circuit):
        stats = _stats_for(simple_circuit, "out", NODE_NET)
        assert stats[0] == 2          # two transistors on "out"
        assert stats[1] == 0          # no gate terminals on "out"
        assert stats[2] == 2          # two source/drain terminals
        assert stats[9] == 1          # one resistor
        assert stats[12] == 1.0       # "out" is a port

    def test_gate_terminal_counting(self, simple_circuit):
        stats = _stats_for(simple_circuit, "in", NODE_NET)
        assert stats[1] == 2          # both gates connect to "in"
        assert stats[2] == 0

    def test_total_width_includes_multiplier(self, simple_circuit):
        stats = _stats_for(simple_circuit, "out", NODE_NET)
        expected_um = (200e-9 * 2 + 400e-9) * 1e6
        assert stats[4] == pytest.approx(expected_um)

    def test_capacitor_fields(self, simple_circuit):
        stats = _stats_for(simple_circuit, "mid", NODE_NET)
        assert stats[6] == 1
        assert stats[7] == pytest.approx(3.0)   # length in um
        assert stats[8] == 6                    # fingers
        assert stats[12] == 0.0                 # not a port


class TestDeviceStats:
    def test_mosfet_geometry(self, simple_circuit):
        stats = _stats_for(simple_circuit, "M1", NODE_DEVICE)
        assert stats[0] == 2                     # multiplier
        assert stats[1] == pytest.approx(0.04)   # length in um
        assert stats[2] == pytest.approx(0.2)    # width in um
        assert stats[9] == 4                     # number of terminals
        assert stats[10] == 0                    # nmos type code

    def test_resistor_and_capacitor_slots(self, simple_circuit):
        r_stats = _stats_for(simple_circuit, "R1", NODE_DEVICE)
        assert r_stats[4] == pytest.approx(2.0)  # resistor length um
        c_stats = _stats_for(simple_circuit, "C1", NODE_DEVICE)
        assert c_stats[8] == 6                   # capacitor fingers


class TestPinStats:
    def test_pin_type_codes(self, simple_circuit):
        for terminal, code in (("G", PIN_TYPE_CODES["G"]), ("D", PIN_TYPE_CODES["D"]),
                               ("S", PIN_TYPE_CODES["S"])):
            stats = _stats_for(simple_circuit, f"M1:{terminal}", NODE_PIN)
            assert stats[0] == code
            assert np.all(stats[1:] == 0)

    def test_matrix_shape_and_unknown_type(self, simple_circuit):
        names = ["out", "M1", "M1:G"]
        types = np.array([NODE_NET, NODE_DEVICE, NODE_PIN])
        stats = compute_node_stats(simple_circuit, names, types)
        assert stats.shape == (3, STATS_DIM)
        with pytest.raises(ValueError):
            compute_node_stats(simple_circuit, ["out"], np.array([7]))


class TestNormalization:
    def test_normalized_range(self):
        rng = np.random.default_rng(0)
        stats = rng.uniform(0, 100, size=(50, STATS_DIM))
        normalised, minimum, value_range = normalize_stats(stats)
        assert normalised.min() >= 0.0 and normalised.max() <= 1.0
        assert minimum.shape == (STATS_DIM,)
        assert value_range.shape == (STATS_DIM,)

    def test_constant_column_does_not_divide_by_zero(self):
        stats = np.ones((10, STATS_DIM))
        normalised, _, _ = normalize_stats(stats)
        assert np.all(np.isfinite(normalised))

    def test_reference_normalization_clips(self):
        train = np.zeros((5, STATS_DIM))
        train[:, 0] = np.arange(5)
        test = np.zeros((2, STATS_DIM))
        test[:, 0] = [10.0, -5.0]
        normalised, _, _ = normalize_stats(test, reference=train)
        assert normalised[0, 0] == 1.0
        assert normalised[1, 0] == 0.0
