"""Tests for the composable sampling datapipes (`repro.graph.datapipe`).

Covers the uniform stage contract, declarative spec round-trips through the
``SAMPLERS`` registry, fanout-bounded extraction, and — the load-bearing
guarantee of the refactor — byte-identical parity between the staged default
pipeline and the historical monolithic ``sample_link_dataset`` recipe at a
fixed seed.
"""

from __future__ import annotations

import numpy as np
import pytest
from numpy.random import default_rng

from repro.api.registries import SAMPLERS, load_builtin_components
from repro.api.registry import RegistryError
from repro.graph import (
    CircuitGraph,
    Link,
    SamplingPipeline,
    SeedBatch,
    as_pipeline,
    balance_links,
    default_link_pipeline,
    default_node_pipeline,
    extract_enclosing_subgraphs,
    inject_link_edges,
    normalize_fanouts,
    normalize_sampling_spec,
    permute_negative_links,
    sample_link_dataset,
)
from repro.graph.datapipe import (
    EnclosingExtractStage,
    FanoutStage,
    InjectStage,
    LinkSeedStage,
    NodeExtractStage,
    NodeSeedStage,
    PermuteNegativeStage,
    SamplerStage,
    ShuffleStage,
    UniformNegativeStage,
)

load_builtin_components()

STAGE_NAMES = [
    "link_seeds", "node_seeds", "negative_permute", "negative_uniform",
    "negative_stratified", "inject", "fanout", "enclosing", "node", "pe",
    "shuffle", "link_dataset", "node_dataset",
]


def _assert_subgraphs_equal(got, expected):
    assert len(got) == len(expected)
    for a, b in zip(got, expected):
        np.testing.assert_array_equal(a.node_ids, b.node_ids)
        np.testing.assert_array_equal(a.edge_index, b.edge_index)
        np.testing.assert_array_equal(a.edge_types, b.edge_types)
        assert a.label == b.label
        assert a.target == b.target
        assert a.link_type == b.link_type


class TestRegistryContract:
    """Satellite 2: every stage lives in SAMPLERS under the uniform contract."""

    def test_all_stages_registered(self):
        assert set(STAGE_NAMES) <= set(SAMPLERS.names())

    def test_registry_build_constructs_configured_stages(self):
        stage = SAMPLERS.build({"type": "enclosing", "hops": 2,
                                "max_nodes_per_hop": 8})
        assert isinstance(stage, EnclosingExtractStage)
        spec = stage.spec()
        assert spec["stage"] == "enclosing"
        assert spec["hops"] == 2 and spec["max_nodes_per_hop"] == 8

    def test_every_stage_follows_the_uniform_contract(self, small_design):
        """Each registered stage is callable as ``stage(graph, seeds, rng=)``."""
        graph = small_design.graph
        for name in ["link_seeds", "negative_permute", "inject", "fanout",
                     "enclosing", "shuffle"]:
            stage = SAMPLERS.build(name)
            out_graph, seeds = stage(graph, SeedBatch(positives=graph.links[:4]),
                                     rng=default_rng(0))
            assert isinstance(seeds, SeedBatch)
            assert isinstance(out_graph, CircuitGraph)

    def test_stage_coerces_plain_link_lists(self, small_design):
        graph = small_design.graph
        links = [Link(0, 1, 4), Link(2, 3, 4), Link(4, 5, 4)]
        _, seeds = PermuteNegativeStage(ratio=1.0, strict=True)(
            graph, links, rng=default_rng(0))
        assert len(seeds.negatives) == 3
        assert seeds.positives == links


class TestSpecRoundTrip:
    def test_pipeline_spec_round_trips(self):
        pipeline = SamplingPipeline([
            LinkSeedStage(balance=True, max_links=64),
            PermuteNegativeStage(ratio=0.5),
            InjectStage(),
            FanoutStage(fanouts=[8, 4]),
            EnclosingExtractStage(),
            ShuffleStage(),
        ])
        spec = pipeline.spec()
        assert [entry["stage"] for entry in spec] == [
            "link_seeds", "negative_permute", "inject", "fanout", "enclosing",
            "shuffle"]
        assert SamplingPipeline.from_spec(spec).spec() == spec

    def test_as_pipeline_accepts_names_dicts_and_stages(self):
        pipeline = as_pipeline(["link_seeds",
                                {"stage": "negative_permute", "ratio": 2.0},
                                EnclosingExtractStage(hops=2)])
        spec = pipeline.spec()
        assert spec[1]["stage"] == "negative_permute"
        assert spec[1]["ratio"] == 2.0
        assert spec[2]["hops"] == 2

    def test_normalize_sampling_spec(self):
        assert normalize_sampling_spec(None) is None
        assert normalize_sampling_spec("link_dataset") == "link_dataset"
        spec = normalize_sampling_spec([{"stage": "link_seeds"}, "enclosing"])
        assert [e["stage"] for e in spec] == ["link_seeds", "enclosing"]
        # Normalisation is canonical: re-normalising is a fixed point.
        assert normalize_sampling_spec(spec) == spec

    def test_unknown_stage_is_an_actionable_error(self):
        with pytest.raises(Exception, match="no_such_stage"):
            normalize_sampling_spec([{"stage": "no_such_stage"}])
        with pytest.raises(Exception, match="no_such_stage"):
            normalize_sampling_spec("no_such_stage")

    def test_run_without_extraction_stage_raises(self, small_design):
        pipeline = SamplingPipeline([LinkSeedStage(max_links=4)])
        with pytest.raises(ValueError, match="extraction stage"):
            pipeline.run(small_design.graph, rng=default_rng(0))


class TestDefaultPipelineParity:
    """The staged default pipeline is byte-identical to the legacy recipe."""

    @pytest.mark.parametrize("seed", [0, 7])
    @pytest.mark.parametrize("inject", [True, False])
    def test_link_pipeline_matches_monolithic_recipe(self, small_design, seed,
                                                     inject):
        graph = small_design.graph
        kwargs = dict(max_links=40, negative_ratio=1.0, balance=True, hops=1,
                      max_nodes_per_hop=10, inject_links=inject)

        # The historical monolithic draw sequence, inlined verbatim.
        rng = default_rng(seed)
        positives = balance_links(list(graph.links), rng=rng)
        if len(positives) > kwargs["max_links"]:
            chosen = rng.choice(len(positives), size=kwargs["max_links"],
                                replace=False)
            positives = [positives[i] for i in chosen]
        negatives = permute_negative_links(positives, graph.num_nodes,
                                           ratio=kwargs["negative_ratio"],
                                           rng=rng, strict=False)
        if inject:
            host = inject_link_edges(graph, list(graph.links) + negatives)
        else:
            host = graph
        samples = extract_enclosing_subgraphs(
            host, positives + negatives, hops=kwargs["hops"],
            max_nodes_per_hop=kwargs["max_nodes_per_hop"],
            add_target_edge=not inject, rng=rng)
        order = rng.permutation(len(samples))
        expected = [samples[i] for i in order]

        pipeline = default_link_pipeline(**kwargs)
        got = pipeline.run(graph, rng=default_rng(seed))
        _assert_subgraphs_equal(got, expected)

        # The deprecated entry point is a shim over the same pipeline.
        shim = sample_link_dataset(graph, rng=default_rng(seed), **kwargs)
        _assert_subgraphs_equal(shim, expected)

    def test_default_spec_is_declarative(self):
        spec = default_link_pipeline(max_links=40, fanouts=[8, 4]).spec()
        assert [e["stage"] for e in spec] == [
            "link_seeds", "negative_permute", "inject", "fanout", "enclosing",
            "shuffle"]
        rebuilt = SamplingPipeline.from_spec(spec)
        assert rebuilt.spec() == spec

    def test_node_pipeline_extracts_anchored_subgraphs(self, small_design):
        graph = small_design.graph
        pipeline = default_node_pipeline(limit=6, hops=1)
        samples = pipeline.run(graph, rng=default_rng(3))
        assert 0 < len(samples) <= 6
        assert all(s.anchors == (0, 0) for s in samples)


class TestFanoutBounding:
    def test_normalize_fanouts(self):
        assert normalize_fanouts(None) is None
        assert normalize_fanouts([8, 4]) == (8, 4)
        assert normalize_fanouts((8, -1)) == (8, None)
        assert normalize_fanouts(8) == (8,)
        with pytest.raises(ValueError):
            normalize_fanouts([0])

    def test_fanout_stage_records_plan_for_extraction(self, small_design):
        graph = small_design.graph
        _, seeds = FanoutStage(fanouts=[4, 2])(graph, None, rng=default_rng(0))
        assert seeds.fanouts == (4, 2)

    def test_fanout_bounds_subgraph_growth(self, small_design):
        """Capped per-hop expansion yields subgraphs no larger than unbounded."""
        graph = small_design.graph
        links = graph.links[:12]
        free = EnclosingExtractStage(hops=2).extract_many(
            graph, links, rng=default_rng(0))
        capped = EnclosingExtractStage(hops=2, fanouts=[2, 2]).extract_many(
            graph, links, rng=default_rng(0))
        assert len(free) == len(capped) == len(links)
        assert all(c.node_ids.size <= f.node_ids.size
                   for c, f in zip(capped, free))
        assert sum(c.node_ids.size for c in capped) < \
            sum(f.node_ids.size for f in free)

    def test_fanout_plan_length_overrides_hops(self, small_design):
        graph = small_design.graph
        stage = EnclosingExtractStage(hops=1, fanouts=[3, 3, 3])
        sub = stage.extract_one(graph, graph.links[0], rng=default_rng(0))
        wide = EnclosingExtractStage(hops=1).extract_one(
            graph, graph.links[0], rng=default_rng(0))
        assert sub.node_ids.size >= 2
        assert wide.node_ids.size >= 2


class TestStageBehaviour:
    def test_link_seed_stage_balances_and_caps(self, small_design):
        graph = small_design.graph
        _, seeds = LinkSeedStage(balance=True, max_links=8)(
            graph, None, rng=default_rng(0))
        assert len(seeds.positives) == 8
        assert all(l.label > 0 for l in seeds.positives)

    def test_node_seed_stage_subsamples_aligned_targets(self, small_design):
        graph = small_design.graph
        nodes = np.arange(12, dtype=np.int64)
        targets = [float(i) for i in range(12)]
        _, seeds = NodeSeedStage(limit=5)(
            graph, SeedBatch(nodes=nodes, targets=targets), rng=default_rng(0))
        assert seeds.nodes.size == 5
        assert [targets[int(n)] for n in seeds.nodes] == seeds.targets

    def test_inject_stage_suppresses_target_edge(self, small_design):
        graph = small_design.graph
        link = graph.links[0]
        host, seeds = InjectStage()(graph, SeedBatch(positives=[link]),
                                    rng=default_rng(0))
        assert seeds.injected
        assert host.edge_index.shape[1] > graph.edge_index.shape[1]
        # Injected host: the extraction stage must not re-add the target edge.
        sub_injected = EnclosingExtractStage().extract_one(
            host, link, rng=default_rng(0), seeds=seeds)
        sub_plain = EnclosingExtractStage().extract_one(
            graph, link, rng=default_rng(0))
        assert sub_plain.edge_types[-1] == link.link_type

    def test_uniform_negative_stage_emits_conditioned_batches(self, small_design):
        graph = small_design.graph
        _, seeds = UniformNegativeStage(k=1, strict=False)(
            graph, SeedBatch(positives=graph.links[:6]), rng=default_rng(0))
        assert seeds.conditioned
        assert len(seeds.negatives) <= 2 * 6
        positive_keys = {l.key() for l in graph.links}
        assert all(l.key() not in positive_keys for l in seeds.negatives)

    def test_shuffle_stage_permutes_subgraphs(self, small_design):
        graph = small_design.graph
        pipeline = SamplingPipeline([LinkSeedStage(max_links=16),
                                     EnclosingExtractStage()])
        base = pipeline.run(graph, rng=default_rng(5))
        shuffled = SamplingPipeline([LinkSeedStage(max_links=16),
                                     EnclosingExtractStage(),
                                     ShuffleStage()]).run(graph,
                                                          rng=default_rng(5))
        assert sorted(s.node_ids[0] for s in base) == \
            sorted(s.node_ids[0] for s in shuffled)


class TestProtocolEdges:
    """Edge paths of the stage protocol: coercion forms, reprs, spec aliases
    and the less-travelled stages (stratified negatives, PE attachment)."""

    def test_seed_batch_coercion_forms(self):
        nodes = np.array([1, 2, 3], dtype=np.int64)
        assert SeedBatch.coerce(nodes).nodes is nodes
        from_ints = SeedBatch.coerce([4, 5])
        assert from_ints.nodes.dtype == np.int64
        assert list(from_ints.nodes) == [4, 5]
        with pytest.raises(TypeError, match="node array"):
            SeedBatch.coerce(object())
        text = repr(SeedBatch(positives=[Link(0, 1, 4)], nodes=nodes))
        assert "positives=1" in text and "nodes=3" in text
        assert "subgraphs=?" in text

    def test_base_stage_apply_is_abstract(self, small_design):
        with pytest.raises(NotImplementedError):
            SamplerStage()(small_design.graph, None, rng=0)

    def test_stage_and_pipeline_reprs(self):
        stage = LinkSeedStage(balance=False, max_links=7)
        assert repr(stage) == \
            "LinkSeedStage(balance=False, max_links=7, per_type=None)"
        pipeline = as_pipeline(["link_seeds", "shuffle"])
        assert len(pipeline) == 2
        assert "link_seeds" in repr(pipeline) and "shuffle" in repr(pipeline)

    def test_node_seeds_can_include_devices(self, small_design):
        graph = small_design.graph
        stage = SAMPLERS.build({"type": "node_seeds", "include_devices": True})
        _, seeds = stage(graph, None, rng=default_rng(0))
        assert seeds.nodes.size == graph.num_nodes

    def test_stratified_stage_appends_collision_free_negatives(self, small_design):
        graph = small_design.graph
        stage = SAMPLERS.build({"type": "negative_stratified", "k": 1,
                                "strict": False})
        _, seeds = stage(graph, SeedBatch(positives=graph.links[:6]),
                         rng=default_rng(0))
        existing = {l.key() for l in graph.links}
        assert seeds.negatives
        for neg in seeds.negatives:
            assert neg.label == 0.0
            assert neg.key() not in existing

    def test_pe_stage_attaches_positional_encodings(self, small_design):
        pipeline = as_pipeline([
            {"stage": "link_seeds", "max_links": 4},
            {"stage": "negative_permute", "ratio": 1.0},
            {"stage": "enclosing", "hops": 1, "max_nodes_per_hop": 8},
            {"stage": "pe", "pe_kind": "dspd"},
        ])
        subgraphs = pipeline.run(small_design.graph, rng=default_rng(0))
        assert subgraphs
        assert all(sg.pe is not None for sg in subgraphs)

    def test_as_pipeline_accepts_every_spec_form(self):
        pipeline = default_link_pipeline()
        assert as_pipeline(pipeline) is pipeline
        assert isinstance(as_pipeline("link_dataset"), SamplingPipeline)
        assert len(as_pipeline("shuffle")) == 1
        assert len(as_pipeline({"stage": "enclosing", "hops": 2})) == 1
        with pytest.raises(RegistryError, match="sampling spec"):
            as_pipeline(123)

    def test_stage_entry_dicts_accept_type_alias_and_reject_bad_entries(self):
        pipeline = as_pipeline([{"type": "shuffle"}])
        assert pipeline.spec()[0]["stage"] == "shuffle"
        with pytest.raises(RegistryError, match="no 'stage' key"):
            SamplingPipeline([{"hops": 2}])
        with pytest.raises(RegistryError, match="callable"):
            SamplingPipeline([123])

    def test_spec_of_a_raw_callable_stage_uses_its_name(self, small_design):
        def passthrough(graph, seeds, *, rng):
            return graph, seeds

        pipeline = SamplingPipeline([passthrough, "shuffle"])
        assert pipeline.spec()[0] == {"stage": "passthrough"}
        subgraphs = SamplingPipeline(
            [passthrough, LinkSeedStage(max_links=4), PermuteNegativeStage(),
             EnclosingExtractStage()]).run(small_design.graph,
                                           rng=default_rng(0))
        assert subgraphs

    def test_default_node_pipeline_inserts_fanout_stage(self):
        pipeline = default_node_pipeline(fanouts=[4, 4])
        assert any(entry["stage"] == "fanout" for entry in pipeline.spec())
