"""Tests for subgraph batching (disjoint-union collation)."""

import numpy as np
import pytest

from repro.graph import batch_iterator, collate, compute_pe, sample_link_dataset


@pytest.fixture(scope="module")
def samples(small_design):
    subgraphs = sample_link_dataset(small_design.graph, max_links=40, rng=0)
    for subgraph in subgraphs:
        compute_pe(subgraph, "dspd")
    return subgraphs


class TestCollate:
    def test_counts_add_up(self, samples):
        batch = collate(samples[:8])
        batch.validate()
        assert batch.num_graphs == 8
        assert batch.num_nodes == sum(s.num_nodes for s in samples[:8])
        assert batch.num_edges == sum(s.num_edges for s in samples[:8])

    def test_batch_vector_is_grouped(self, samples):
        batch = collate(samples[:5])
        boundaries = np.flatnonzero(np.diff(batch.batch)) + 1
        assert len(boundaries) == 4
        assert np.all(np.diff(batch.batch) >= 0)

    def test_edges_stay_within_graphs(self, samples):
        batch = collate(samples[:10])
        assert np.all(batch.batch[batch.edge_index[0]] == batch.batch[batch.edge_index[1]])

    def test_anchor_indices_offset_correctly(self, samples):
        batch = collate(samples[:4])
        offset = 0
        for graph_id, subgraph in enumerate(samples[:4]):
            assert batch.anchors[graph_id, 0] == offset + subgraph.anchors[0]
            assert batch.anchors[graph_id, 1] == offset + subgraph.anchors[1]
            assert batch.node_types[offset] == subgraph.node_types[0]
            offset += subgraph.num_nodes

    def test_labels_targets_preserved(self, samples):
        batch = collate(samples[:6])
        np.testing.assert_allclose(batch.labels, [s.label for s in samples[:6]])
        np.testing.assert_allclose(batch.targets, [s.target for s in samples[:6]])
        np.testing.assert_array_equal(batch.link_types, [s.link_type for s in samples[:6]])

    def test_pe_and_stats_concatenated(self, samples):
        batch = collate(samples[:3])
        assert batch.pe.shape == (batch.num_nodes, samples[0].pe.shape[1])
        assert batch.node_stats.shape == (batch.num_nodes, samples[0].node_stats.shape[1])

    def test_empty_batch_raises(self):
        with pytest.raises(ValueError):
            collate([])

    def test_inconsistent_pe_dims_raise(self, samples):
        import copy

        bad = copy.deepcopy(samples[:2])
        bad[1].pe = np.zeros((bad[1].num_nodes, 3))
        with pytest.raises(ValueError):
            collate(bad)


class TestBatchIterator:
    def test_covers_all_samples(self, samples):
        seen = 0
        for batch in batch_iterator(samples, 16, shuffle=False):
            seen += batch.num_graphs
        assert seen == len(samples)

    def test_drop_last(self, samples):
        batches = list(batch_iterator(samples, 16, shuffle=False, drop_last=True))
        assert all(b.num_graphs == 16 for b in batches)

    def test_shuffle_changes_order(self, samples):
        first = next(iter(batch_iterator(samples, 8, shuffle=True, rng=0)))
        second = next(iter(batch_iterator(samples, 8, shuffle=True, rng=99)))
        assert not np.array_equal(first.labels, second.labels) or \
            not np.array_equal(first.targets, second.targets)

    def test_invalid_batch_size(self, samples):
        with pytest.raises(ValueError):
            list(batch_iterator(samples, 0))
