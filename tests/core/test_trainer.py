"""Tests for the subgraph trainer and the full-graph baseline trainer."""

import numpy as np
import pytest

from repro.core import BaselineTrainer, Trainer, link_pairs_for_design
from repro.core.datasets import build_edge_regression_samples, build_link_samples
from repro.core.pretrain import build_model
from repro.models import DLPLCap, ParaGraph


@pytest.fixture(scope="module")
def link_samples(small_design, tiny_config):
    return build_link_samples(small_design, tiny_config.data, pe_kind="dspd", rng=0)


@pytest.fixture(scope="module")
def regression_samples(small_design, tiny_config):
    return build_edge_regression_samples(small_design, tiny_config.data, rng=0)


class TestTrainer:
    def test_rejects_unknown_task(self, tiny_config):
        model = build_model(tiny_config)
        with pytest.raises(ValueError):
            Trainer(model, task="segmentation", config=tiny_config.train)

    def test_link_training_reduces_loss(self, tiny_config, link_samples):
        model = build_model(tiny_config)
        trainer = Trainer(model, task="link", config=tiny_config.train)
        history = trainer.fit(link_samples, epochs=4)
        losses = [row["loss"] for row in history.history]
        assert losses[-1] < losses[0]

    def test_link_training_beats_chance_on_train_set(self, tiny_config, link_samples):
        model = build_model(tiny_config)
        trainer = Trainer(model, task="link", config=tiny_config.train)
        trainer.fit(link_samples, epochs=5)
        metrics = trainer.evaluate(link_samples)
        assert metrics["accuracy"] > 0.7
        assert metrics["auc"] > 0.75

    def test_predict_returns_probabilities_for_link(self, tiny_config, link_samples):
        model = build_model(tiny_config)
        trainer = Trainer(model, task="link", config=tiny_config.train)
        scores = trainer.predict(link_samples[:16])
        assert scores.shape == (16,)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_regression_training_improves_r2(self, tiny_config, regression_samples):
        model = build_model(tiny_config)
        trainer = Trainer(model, task="edge_regression", config=tiny_config.train)
        before = trainer.evaluate(regression_samples)
        trainer.fit(regression_samples, epochs=5)
        after = trainer.evaluate(regression_samples)
        assert after["mae"] < before["mae"]

    def test_validation_metrics_logged(self, tiny_config, link_samples):
        model = build_model(tiny_config)
        trainer = Trainer(model, task="link", config=tiny_config.train)
        history = trainer.fit(link_samples[:60], link_samples[60:90], epochs=2)
        assert "val_accuracy" in history.history[-1]

    def test_head_only_parameters_subset(self, tiny_config, regression_samples):
        model = build_model(tiny_config)
        model.freeze_backbone()
        trainer = Trainer(model, task="edge_regression", config=tiny_config.train,
                          parameters=model.head_parameters("edge_regression"))
        backbone_before = {name: param.data.copy()
                           for name, param in model.node_encoder.named_parameters()}
        trainer.fit(regression_samples[:40], epochs=2)
        for name, before in backbone_before.items():
            np.testing.assert_allclose(dict(model.node_encoder.named_parameters())[name].data,
                                       before)


class TestBaselineTrainer:
    def test_link_pairs_balanced(self, small_design, tiny_config):
        pairs, labels, targets = link_pairs_for_design(small_design, tiny_config.data, rng=0)
        assert pairs.shape[0] == labels.shape[0] == targets.shape[0]
        assert 0.3 <= labels.mean() <= 0.7

    def test_regression_pairs_filtered_to_cap_range(self, small_design, tiny_config):
        pairs, labels, targets = link_pairs_for_design(small_design, tiny_config.data,
                                                       regression=True, rng=0)
        assert np.all(targets[labels == 1.0] > 0)

    @pytest.mark.parametrize("model_cls", [ParaGraph, DLPLCap])
    def test_link_training_runs_and_evaluates(self, model_cls, small_design, tiny_config):
        model = model_cls(dim=12, num_layers=2, rng=0)
        trainer = BaselineTrainer(model, task="link", config=tiny_config.train,
                                  data_config=tiny_config.data)
        history = trainer.fit([small_design], epochs=3)
        assert len(history.history) == 3
        metrics = trainer.evaluate(small_design)
        assert set(metrics) == {"accuracy", "f1", "auc"}

    def test_edge_regression_task(self, small_design, tiny_config):
        model = ParaGraph(dim=12, num_layers=2, rng=0)
        trainer = BaselineTrainer(model, task="edge_regression", config=tiny_config.train,
                                  data_config=tiny_config.data)
        trainer.fit([small_design], epochs=2)
        metrics = trainer.evaluate(small_design)
        assert set(metrics) == {"mae", "rmse", "r2"}

    def test_node_regression_task(self, small_design, tiny_config):
        model = DLPLCap(dim=12, num_layers=2, rng=0)
        trainer = BaselineTrainer(model, task="node_regression", config=tiny_config.train,
                                  data_config=tiny_config.data)
        trainer.fit([small_design], epochs=2)
        metrics = trainer.evaluate(small_design)
        assert np.isfinite(metrics["mae"])

    def test_unknown_task_raises(self, tiny_config):
        with pytest.raises(ValueError):
            BaselineTrainer(ParaGraph(dim=8, num_layers=1, rng=0), task="foo",
                            config=tiny_config.train, data_config=tiny_config.data)
