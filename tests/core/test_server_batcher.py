"""Micro-batcher contracts: flush policy (property-based) + asyncio wrapper.

The flush policy lives in :class:`MicroBatcherCore`, a pure state machine
that takes the clock as an argument — so hypothesis can drive it with random
arrival processes against a *simulated* clock and check the three service
invariants exactly:

* no flushed batch ever exceeds ``max_batch``,
* demultiplexing is exact: items come back FIFO, none lost, none duplicated,
* no item's flush is initiated later than one latency budget
  (``window_s``) past its arrival.

The asyncio wrapper (:class:`MicroBatcher`) is tested with a real event
loop: size/window flushes, cross-submitter coalescing, per-item fault
isolation and queue backpressure.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.server import MicroBatcher, MicroBatcherCore, ServerMetrics


# --------------------------------------------------------------------------- #
# Simulated-clock driver
# --------------------------------------------------------------------------- #
def simulate(arrival_gaps, max_batch, window_s):
    """Run the flush policy over an arrival process on a simulated clock.

    Mirrors the asyncio flush loop: wake on every arrival and on every
    pending deadline, flush whenever the core says ready.  Returns the list
    of flushed batches as ``(flush_time, [(payload, arrival), ...])``.
    """
    core = MicroBatcherCore(max_batch, window_s)
    batches = []
    now = 0.0

    def flush_ready(at):
        while core.ready(at):
            batches.append((at, [(item.payload, item.arrival)
                                 for item in core.take()]))

    for index, gap in enumerate(arrival_gaps):
        # Any deadline that expires before this arrival fires first.
        while core.depth:
            deadline = core.next_deadline()
            if deadline >= now + gap:
                break
            flush_ready(deadline)
        now += gap
        core.add(index, now)
        flush_ready(now)
    while core.depth:
        flush_ready(core.next_deadline())
    return batches


arrival_processes = st.lists(
    st.floats(min_value=0.0, max_value=0.05, allow_nan=False), min_size=1, max_size=60)


class TestFlushPolicyProperties:
    @settings(max_examples=200, deadline=None)
    @given(gaps=arrival_processes, max_batch=st.integers(1, 8),
           window_s=st.floats(0.0, 0.05, allow_nan=False))
    def test_invariants(self, gaps, max_batch, window_s):
        batches = simulate(gaps, max_batch, window_s)
        # 1. No batch exceeds max_batch.
        assert all(len(items) <= max_batch for _, items in batches)
        # 2. Exact demultiplexing: FIFO, nothing lost, nothing duplicated.
        flushed = [payload for _, items in batches for payload, _ in items]
        assert flushed == list(range(len(gaps)))
        # 3. No item waits more than one latency budget past its arrival.
        for flush_time, items in batches:
            for _, arrival in items:
                assert flush_time <= arrival + window_s + 1e-12

    @settings(max_examples=50, deadline=None)
    @given(gaps=arrival_processes, max_batch=st.integers(1, 8))
    def test_zero_window_flushes_immediately(self, gaps, max_batch):
        # window 0 degenerates to per-arrival flushing: every batch is taken
        # at the instant its oldest item arrived.
        for flush_time, items in simulate(gaps, max_batch, 0.0):
            assert flush_time == items[0][1]

    def test_full_batch_flushes_before_deadline(self):
        core = MicroBatcherCore(max_batch=2, window_s=10.0)
        core.add("a", 0.0)
        assert not core.ready(0.5)
        core.add("b", 0.5)
        assert core.ready(0.5)  # size bound hit long before the window
        assert [item.payload for item in core.take()] == ["a", "b"]

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcherCore(0, 1.0)
        with pytest.raises(ValueError):
            MicroBatcherCore(4, -1.0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda batch: batch, max_batch=8, max_queue=4)


# --------------------------------------------------------------------------- #
# Asyncio wrapper
# --------------------------------------------------------------------------- #
def run(coroutine):
    return asyncio.run(coroutine)


class TestMicroBatcher:
    def test_demultiplexes_across_submitters(self):
        """Concurrent submitters coalesce; each gets exactly its results."""
        seen_batches = []

        def runner(batch):
            seen_batches.append(list(batch))
            return [payload * 10 for payload in batch]

        async def main():
            batcher = MicroBatcher(runner, max_batch=64, window_s=0.02,
                                   metrics=ServerMetrics())
            batcher.start()
            results = await asyncio.gather(
                batcher.submit([1, 2, 3]),
                batcher.submit([4, 5]),
                batcher.submit([6]),
            )
            await batcher.stop()
            return results

        results = run(main())
        assert results == [[10, 20, 30], [40, 50], [60]]
        # All six items coalesced into one shared batch (nobody hit the
        # window alone: the submitters enqueue in the same loop iteration).
        assert sorted(len(batch) for batch in seen_batches)[-1] == 6

    def test_size_flush_happens_before_window(self):
        flush_sizes = []

        def runner(batch):
            flush_sizes.append(len(batch))
            return list(batch)

        async def main():
            batcher = MicroBatcher(runner, max_batch=4, window_s=60.0)
            batcher.start()
            await batcher.submit(list(range(8)))  # would wait 60s otherwise
            await batcher.stop()

        run(main())
        assert flush_sizes == [4, 4]

    def test_per_item_fault_isolation(self):
        """A poisoned item fails alone; its batch-mates still get results."""

        def runner(batch):
            if any(payload == "poison" for payload in batch):
                raise RuntimeError("poisoned sample")
            return [f"ok:{payload}" for payload in batch]

        async def main():
            metrics = ServerMetrics()
            batcher = MicroBatcher(runner, max_batch=16, window_s=0.01,
                                   metrics=metrics)
            batcher.start()
            good, bad = await asyncio.gather(
                batcher.submit(["a", "b"]),
                batcher.submit(["poison"]),
                return_exceptions=True,
            )
            await batcher.stop()
            return good, bad, metrics

        good, bad, metrics = run(main())
        assert good == ["ok:a", "ok:b"]
        assert isinstance(bad, RuntimeError)
        assert metrics.get("batch_retries_total") >= 1
        assert metrics._errors.get("batch_item_error", 0) == 1

    def test_backpressure_bounds_queue_depth(self):
        metrics = ServerMetrics()

        def runner(batch):
            return list(batch)

        async def main():
            batcher = MicroBatcher(runner, max_batch=4, window_s=0.0,
                                   max_queue=4, metrics=metrics)
            batcher.start()
            results = await asyncio.gather(
                *[batcher.submit(list(range(i * 10, i * 10 + 5)))
                  for i in range(6)])
            await batcher.stop()
            return results

        results = run(main())
        assert [len(r) for r in results] == [5] * 6
        assert sorted(sum(results, [])) == sorted(
            sum([list(range(i * 10, i * 10 + 5)) for i in range(6)], []))
        # submit() waited for space instead of growing past the bound.
        assert metrics.max_queue_depth <= 4

    def test_stop_drains_pending_items(self):
        def runner(batch):
            return [payload + 1 for payload in batch]

        async def main():
            batcher = MicroBatcher(runner, max_batch=64, window_s=120.0)
            batcher.start()
            pending = asyncio.ensure_future(batcher.submit([1, 2, 3]))
            await asyncio.sleep(0.01)  # items are queued, window far away
            assert not pending.done()
            await batcher.stop()  # drain must flush them without the window
            return await pending

        assert run(main()) == [2, 3, 4]

    def test_submit_requires_running_batcher(self):
        async def main():
            batcher = MicroBatcher(lambda batch: batch)
            with pytest.raises(RuntimeError, match="not running"):
                await batcher.submit([1])

        run(main())
