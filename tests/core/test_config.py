"""Tests for experiment configuration objects."""

import pytest

from repro.core import DataConfig, ExperimentConfig, ModelConfig, TrainConfig


class TestExperimentConfig:
    def test_defaults_are_consistent(self):
        config = ExperimentConfig.default()
        assert config.model.dim > config.model.pe_hidden
        assert config.train.epochs > 0
        assert 0 < config.data.scale <= 1.0

    def test_fast_config_is_smaller(self):
        fast = ExperimentConfig.fast()
        default = ExperimentConfig.default()
        assert fast.model.dim <= default.model.dim
        assert fast.train.epochs <= default.train.epochs
        assert fast.data.max_links_per_design <= default.data.max_links_per_design

    def test_benchmark_config_builds(self):
        bench = ExperimentConfig.benchmark()
        assert bench.name == "circuitgps-bench"

    def test_with_model_returns_new_object(self):
        config = ExperimentConfig.default()
        modified = config.with_model(dim=128)
        assert modified.model.dim == 128
        assert config.model.dim != 128
        assert modified.train is config.train

    def test_with_train_and_data(self):
        config = ExperimentConfig.default().with_train(epochs=1).with_data(scale=0.1)
        assert config.train.epochs == 1
        assert config.data.scale == 0.1

    def test_as_dict_roundtrip_keys(self):
        config = ExperimentConfig.default()
        payload = config.as_dict()
        assert set(payload) == {"model", "train", "data", "name"}
        assert payload["model"]["dim"] == config.model.dim

    def test_worker_counts_are_runtime_only_not_persisted(self):
        """A checkpoint trained with workers must not fork on other machines."""
        config = (ExperimentConfig.default()
                  .with_train(num_workers=8).with_data(num_workers=8))
        payload = config.as_dict()
        assert "num_workers" not in payload["train"]
        assert "num_workers" not in payload["data"]
        restored = ExperimentConfig.from_dict(payload)
        assert restored.train.num_workers == 0
        assert restored.data.num_workers == 0

    def test_configs_are_frozen(self):
        config = ExperimentConfig.default()
        with pytest.raises(Exception):
            config.model.dim = 12
        with pytest.raises(Exception):
            config.train.lr = 0.5

    def test_subconfigs_standalone(self):
        assert ModelConfig().dim > 0
        assert TrainConfig().lr > 0
        assert DataConfig().hops == 1
