"""Tests for the ``python -m repro`` command-line interface.

The end-to-end test drives the real CLI in-process (no subprocess) with a
deliberately tiny configuration: train -> save artifact -> annotate a bundled
SPICE netlist -> render the JSON report.
"""

import json

import pytest

from repro.core.cli import build_parser, main
from repro.netlist import ssram, write_spice


def test_help_exits_zero(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    assert "train" in capsys.readouterr().out


def test_subcommand_required():
    with pytest.raises(SystemExit):
        main([])


def test_parser_presets_cover_all_configs():
    parser = build_parser()
    args = parser.parse_args(["train", "--out", "x", "--config", "benchmark"])
    assert args.config == "benchmark"


def test_bad_pairs_argument_rejected(tmp_path):
    with pytest.raises(SystemExit):
        main(["annotate", str(tmp_path), "whatever.sp", "--pairs", "only_one_name"])


def test_missing_checkpoint_is_reported(tmp_path, capsys):
    code = main(["annotate", str(tmp_path / "nope"), "whatever.sp"])
    assert code == 2
    assert "error" in capsys.readouterr().err


def test_report_on_missing_path(tmp_path, capsys):
    assert main(["report", str(tmp_path / "missing")]) == 2


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def workdir(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli_e2e")
        netlist = root / "user_macro.sp"
        design = ssram(rows=4, cols=4)
        design.name = "USER_MACRO"
        netlist.write_text(write_spice(design))
        return root

    @pytest.fixture(scope="class")
    def artifact(self, workdir):
        out = workdir / "ckpt"
        code = main([
            "train", "--config", "fast", "--out", str(out),
            "--designs", "SSRAM", "TIMING_CONTROL",
            "--epochs", "1", "--scale", "0.25", "--max-links", "40",
            "--dim", "16", "--layers", "1", "--attention", "none",
        ])
        assert code == 0
        assert (out / "pipeline.npz").exists()
        return out

    def test_annotate_and_report(self, workdir, artifact, capsys):
        report = workdir / "report.json"
        annotated = workdir / "annotated"
        code = main([
            "annotate", str(artifact), str(workdir / "user_macro.sp"),
            "--pairs", "BL0,BL1", "--pairs", "BL0,BLB0",
            "--json", str(report), "--annotated-out", str(annotated),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "BL0" in out and "candidates" in out

        payload = json.loads(report.read_text())
        assert payload["num_candidates"] == 2
        assert payload["records"][0]["pair"] == ["BL0", "BL1"]
        annotated_netlist = annotated / "user_macro.annotated.sp"
        assert annotated_netlist.exists()
        assert annotated_netlist.read_text().rstrip().endswith(".end")

        code = main(["report", str(report)])
        assert code == 0
        assert "BL0" in capsys.readouterr().out

    def test_annotate_auto_candidates(self, workdir, artifact, capsys):
        code = main([
            "annotate", str(artifact), str(workdir / "user_macro.sp"),
            "--max-candidates", "6", "--threshold", "0.0",
        ])
        assert code == 0
        assert "out of 6 candidates" in capsys.readouterr().out

    def test_annotate_unknown_pair_reports_error(self, workdir, artifact, capsys):
        code = main([
            "annotate", str(artifact), str(workdir / "user_macro.sp"),
            "--pairs", "nope,also_nope",
        ])
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_annotate_emits_completed_reports_before_failing(self, workdir, artifact,
                                                             tmp_path, capsys):
        """A bad netlist mid-list must not discard earlier designs' output."""
        bad = tmp_path / "bad.sp"
        bad.write_text("C0 other_a other_b 1f\n.end\n")
        annotated = tmp_path / "annotated"
        code = main([
            "annotate", str(artifact),
            str(workdir / "user_macro.sp"), str(bad),
            "--pairs", "BL0,BL1", "--annotated-out", str(annotated),
        ])
        assert code == 2
        captured = capsys.readouterr()
        assert "BL0" in captured.out              # first design was printed...
        assert "not found" in captured.err        # ...before the error surfaced
        assert (annotated / "user_macro.annotated.sp").exists()

    def test_annotate_multiple_netlists_with_workers(self, workdir, artifact, capsys):
        code = main([
            "annotate", str(artifact),
            str(workdir / "user_macro.sp"), str(workdir / "user_macro.sp"),
            "--pairs", "BL0,BL1", "--workers", "2",
        ])
        assert code == 0
        assert capsys.readouterr().out.count("out of 1 candidates") == 2
