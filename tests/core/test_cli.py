"""Tests for the ``python -m repro`` command-line interface.

The end-to-end test drives the real CLI in-process (no subprocess) with a
deliberately tiny configuration: train -> save artifact -> annotate a bundled
SPICE netlist -> render the JSON report.
"""

import json

import pytest

from repro.core.cli import build_parser, main
from repro.netlist import ssram, write_spice


def test_help_exits_zero(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    assert "train" in capsys.readouterr().out


def test_subcommand_required():
    with pytest.raises(SystemExit):
        main([])


def test_parser_presets_cover_all_configs():
    parser = build_parser()
    args = parser.parse_args(["train", "--out", "x", "--config", "benchmark"])
    assert args.config == "benchmark"


def test_bad_pairs_argument_rejected(tmp_path):
    with pytest.raises(SystemExit):
        main(["annotate", str(tmp_path), "whatever.sp", "--pairs", "only_one_name"])


def test_missing_checkpoint_is_reported(tmp_path, capsys):
    code = main(["annotate", str(tmp_path / "nope"), "whatever.sp"])
    assert code == 2
    assert "error" in capsys.readouterr().err


def test_report_on_missing_path(tmp_path, capsys):
    assert main(["report", str(tmp_path / "missing")]) == 2


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def workdir(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli_e2e")
        netlist = root / "user_macro.sp"
        design = ssram(rows=4, cols=4)
        design.name = "USER_MACRO"
        netlist.write_text(write_spice(design))
        return root

    @pytest.fixture(scope="class")
    def artifact(self, workdir):
        out = workdir / "ckpt"
        code = main([
            "train", "--config", "fast", "--out", str(out),
            "--designs", "SSRAM", "TIMING_CONTROL",
            "--epochs", "1", "--scale", "0.25", "--max-links", "40",
            "--dim", "16", "--layers", "1", "--attention", "none",
        ])
        assert code == 0
        assert (out / "pipeline.npz").exists()
        return out

    def test_annotate_and_report(self, workdir, artifact, capsys):
        report = workdir / "report.json"
        annotated = workdir / "annotated"
        code = main([
            "annotate", str(artifact), str(workdir / "user_macro.sp"),
            "--pairs", "BL0,BL1", "--pairs", "BL0,BLB0",
            "--json", str(report), "--annotated-out", str(annotated),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "BL0" in out and "candidates" in out

        payload = json.loads(report.read_text())
        assert payload["num_candidates"] == 2
        assert payload["records"][0]["pair"] == ["BL0", "BL1"]
        annotated_netlist = annotated / "user_macro.annotated.sp"
        assert annotated_netlist.exists()
        assert annotated_netlist.read_text().rstrip().endswith(".end")

        code = main(["report", str(report)])
        assert code == 0
        assert "BL0" in capsys.readouterr().out

    def test_annotate_auto_candidates(self, workdir, artifact, capsys):
        code = main([
            "annotate", str(artifact), str(workdir / "user_macro.sp"),
            "--max-candidates", "6", "--threshold", "0.0",
        ])
        assert code == 0
        assert "out of 6 candidates" in capsys.readouterr().out

    def test_annotate_float32_backend_numpy(self, workdir, artifact, tmp_path,
                                            capsys):
        """``--backend numpy --precision float32`` serves within 1e-4 of f64."""
        report64 = tmp_path / "report64.json"
        report32 = tmp_path / "report32.json"
        for precision, report in (("float64", report64), ("float32", report32)):
            code = main([
                "annotate", str(artifact), str(workdir / "user_macro.sp"),
                "--pairs", "BL0,BL1", "--pairs", "BL0,BLB0",
                "--backend", "numpy", "--precision", precision,
                "--json", str(report),
            ])
            assert code == 0
        recs64 = json.loads(report64.read_text())["records"]
        recs32 = json.loads(report32.read_text())["records"]
        for r64, r32 in zip(recs64, recs32):
            assert r32["pair"] == r64["pair"]
            assert abs(r32["coupling_probability"]
                       - r64["coupling_probability"]) <= 1e-4

    def test_annotate_unknown_pair_reports_error(self, workdir, artifact, capsys):
        code = main([
            "annotate", str(artifact), str(workdir / "user_macro.sp"),
            "--pairs", "nope,also_nope",
        ])
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_annotate_emits_completed_reports_before_failing(self, workdir, artifact,
                                                             tmp_path, capsys):
        """A bad netlist mid-list must not discard earlier designs' output."""
        bad = tmp_path / "bad.sp"
        bad.write_text("C0 other_a other_b 1f\n.end\n")
        annotated = tmp_path / "annotated"
        code = main([
            "annotate", str(artifact),
            str(workdir / "user_macro.sp"), str(bad),
            "--pairs", "BL0,BL1", "--annotated-out", str(annotated),
        ])
        assert code == 2
        captured = capsys.readouterr()
        assert "BL0" in captured.out              # first design was printed...
        assert "not found" in captured.err        # ...before the error surfaced
        assert (annotated / "user_macro.annotated.sp").exists()

    def test_annotate_multiple_netlists_with_workers(self, workdir, artifact, capsys):
        code = main([
            "annotate", str(artifact),
            str(workdir / "user_macro.sp"), str(workdir / "user_macro.sp"),
            "--pairs", "BL0,BL1", "--workers", "2",
        ])
        assert code == 0
        assert capsys.readouterr().out.count("out of 1 candidates") == 2

    def test_annotate_sharded(self, workdir, artifact, tmp_path, capsys):
        """``--shards N`` annotates the hierarchical netlist in pieces."""
        report = tmp_path / "sharded.json"
        annotated = tmp_path / "annotated"
        code = main([
            "annotate", str(artifact), str(workdir / "user_macro.sp"),
            "--pairs", "BL0,BL1", "--pairs", "BL0,BLB0",
            "--shards", "2", "--json", str(report),
            "--annotated-out", str(annotated),
        ])
        assert code == 0
        assert "user_macro" in capsys.readouterr().out
        payload = json.loads(report.read_text())
        assert [r["pair"] for r in payload["records"]] \
            == [["BL0", "BL1"], ["BL0", "BLB0"]]
        assert (annotated / "user_macro.annotated.sp").exists()

    def test_annotate_sharded_auto_candidates(self, workdir, artifact, capsys):
        code = main([
            "annotate", str(artifact), str(workdir / "user_macro.sp"),
            "--shards", "2", "--max-candidates", "4", "--threshold", "0.0",
        ])
        assert code == 0
        assert "candidates" in capsys.readouterr().out

    def test_shards_rejected_with_remote(self, workdir, capsys):
        code = main([
            "annotate", "-", str(workdir / "user_macro.sp"),
            "--remote", "http://127.0.0.1:1", "--shards", "2",
        ])
        assert code == 2
        assert "--shards" in capsys.readouterr().err

    def test_sharded_unknown_pair_reports_error(self, workdir, artifact, capsys):
        code = main([
            "annotate", str(artifact), str(workdir / "user_macro.sp"),
            "--pairs", "nope,also_nope", "--shards", "2",
        ])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_reannotate_end_to_end(self, workdir, artifact, tmp_path, capsys):
        """annotate --json -> edit the netlist -> reannotate --prev."""
        report = tmp_path / "base.json"
        code = main([
            "annotate", str(artifact), str(workdir / "user_macro.sp"),
            "--pairs", "BL0,BL1", "--pairs", "WL0,WL1", "--threshold", "0.0",
            "--json", str(report),
        ])
        assert code == 0
        eco = tmp_path / "user_macro_eco.sp"
        base_text = (workdir / "user_macro.sp").read_text()
        eco.write_text(base_text.replace(
            ".end", "CECO BL0 VSS 2f\n.end"))
        updated = tmp_path / "updated.json"
        capsys.readouterr()
        code = main([
            "reannotate", str(artifact), str(workdir / "user_macro.sp"),
            str(eco), "--prev", str(report), "--threshold", "0.0",
            "--json", str(updated),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "recomputed" in out and "reused" in out
        payload = json.loads(updated.read_text())
        assert [r["pair"] for r in payload["records"]] \
            == [["BL0", "BL1"], ["WL0", "WL1"]]
        summary = payload["incremental"]
        assert summary["recomputed"] >= 1                  # the BL0 pair
        assert summary["reused"] + summary["recomputed"] == 2

    def test_reannotate_rejects_multi_design_report(self, workdir, artifact,
                                                    tmp_path, capsys):
        bogus = tmp_path / "multi.json"
        bogus.write_text(json.dumps({"reports": []}))
        code = main([
            "reannotate", str(artifact), str(workdir / "user_macro.sp"),
            str(workdir / "user_macro.sp"), "--prev", str(bogus),
        ])
        assert code == 2
        assert "report" in capsys.readouterr().err


class TestBenchCompare:
    """``python -m repro bench --compare OLD NEW`` (the CI perf gate)."""

    @staticmethod
    def _write(tmp_path, name, metrics):
        from repro.analysis.bench import BenchRecorder

        rec = BenchRecorder("serve", out_dir=tmp_path / name)
        for metric, (value, direction) in metrics.items():
            rec.record(metric, value, direction=direction)
        return str(rec.write())

    def test_detects_injected_regression(self, tmp_path, capsys):
        old = self._write(tmp_path, "old", {
            "links_per_s": (1000.0, "higher"), "latency_s": (1.0, "lower")})
        new = self._write(tmp_path, "new", {
            "links_per_s": (800.0, "higher"), "latency_s": (1.01, "lower")})
        assert main(["bench", "--compare", old, new]) == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.err
        assert "links_per_s" in captured.err
        assert "latency_s" not in captured.err  # 1% is inside the threshold

    def test_improvement_and_noise_pass(self, tmp_path, capsys):
        old = self._write(tmp_path, "old", {
            "links_per_s": (1000.0, "higher"), "latency_s": (1.0, "lower")})
        new = self._write(tmp_path, "new", {
            "links_per_s": (1500.0, "higher"), "latency_s": (0.95, "lower")})
        assert main(["bench", "--compare", old, new]) == 0
        out = capsys.readouterr().out
        assert "improved" in out and "no regressions" in out.lower()

    def test_threshold_flag_loosens_the_gate(self, tmp_path):
        old = self._write(tmp_path, "old", {"links_per_s": (1000.0, "higher")})
        new = self._write(tmp_path, "new", {"links_per_s": (800.0, "higher")})
        assert main(["bench", "--compare", old, new, "--threshold", "0.25"]) == 0
        assert main(["bench", "--compare", old, new, "--threshold", "-1"]) == 2

    def test_direction_matters(self, tmp_path):
        # latency going UP 20% regresses even though the number "increased"
        old = self._write(tmp_path, "old", {"latency_s": (1.0, "lower")})
        new = self._write(tmp_path, "new", {"latency_s": (1.2, "lower")})
        assert main(["bench", "--compare", old, new]) == 1

    def test_metrics_in_only_one_file_never_fail(self, tmp_path, capsys):
        old = self._write(tmp_path, "old", {"gone_s": (1.0, "lower")})
        new = self._write(tmp_path, "new", {"fresh_s": (9.0, "lower")})
        assert main(["bench", "--compare", old, new]) == 0
        out = capsys.readouterr().out
        assert "old-only" in out and "new-only" in out

    def test_bad_input_reports_error(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"schema": "other"}))
        good = self._write(tmp_path, "good", {"x": (1.0, "higher")})
        assert main(["bench", "--compare", str(bogus), good]) == 2
        assert "error" in capsys.readouterr().err
        assert main(["bench", "--compare", str(tmp_path / "nope.json"), good]) == 2


class TestBackendFlag:
    """``--backend`` selection and its failure modes."""

    def test_unavailable_backend_exits_2_with_actionable_message(self, tmp_path,
                                                                 capsys):
        from repro.nn.backends import available_backends
        from repro.api import BACKENDS

        unavailable = [name for name in BACKENDS.names()
                       if name not in available_backends()]
        if not unavailable:
            pytest.skip("all optional backends are installed here")
        code = main(["annotate", str(tmp_path / "ckpt"), "whatever.sp",
                     "--backend", unavailable[0]])
        assert code == 2
        err = capsys.readouterr().err
        assert unavailable[0] in err

    def test_unknown_backend_lists_available_names(self, tmp_path, capsys):
        code = main(["annotate", str(tmp_path), "x.sp", "--backend", "cuda9000"])
        assert code == 2
        err = capsys.readouterr().err
        assert "cuda9000" in err and "numpy" in err
