"""End-to-end tests of the annotation daemon (repro.core.server.app).

A real :class:`ThreadedServer` (OS-assigned port) serves a session-scoped
deterministic engine; a stdlib :class:`ServeClient` talks to it.  The
central contract under test: responses are **byte-identical** whether a
request is served alone, sequentially, or coalesced into concurrent
cross-request batches — and identical to what the local engine computes.
"""

from __future__ import annotations

import concurrent.futures
import json

import numpy as np
import pytest

from repro.core.serve import annotation_payload, default_candidate_pairs
from repro.core.server import (
    ServeClient,
    ServeError,
    ServerConfig,
    ThreadedServer,
    dumps_canonical,
)
from repro.graph import netlist_to_graph
from repro.netlist import parse_spice


@pytest.fixture(scope="module")
def server(server_engine):
    with ThreadedServer(server_engine,
                        ServerConfig(port=0, batch_window_ms=5.0),
                        extra_info={"backend": "numpy"}) as threaded:
        yield threaded


@pytest.fixture(scope="module")
def client(server):
    return ServeClient(server.url, timeout=30.0)


def local_reference(engine, spice: str, name: str, pairs, seed: int,
                    max_candidates: int = 200) -> bytes:
    """What the wire bytes must equal: the local engine's annotation.

    Uses :meth:`annotate_many` so the per-design seed is the same
    SeedSequence-spawned stream the daemon derives for position 0.
    """
    graph = netlist_to_graph(parse_spice(spice, name=name).flatten())
    (annotation,) = engine.annotate_many(
        [graph], pairs=None if pairs is None else [pairs],
        max_candidates=max_candidates, seed=seed)
    return dumps_canonical(annotation_payload(
        annotation.design, annotation.records, annotation.threshold))


@pytest.fixture(scope="module")
def workload(server_engine, server_spice):
    """Candidate pairs of the test design, as string tuples."""
    graph = netlist_to_graph(parse_spice(server_spice, name="APP").flatten())
    return default_candidate_pairs(graph, max_candidates=12,
                                   rng=np.random.default_rng(5))


class TestServiceEndpoints:
    def test_healthz(self, client):
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["precision"] == "float64"
        assert payload["task"] == "edge_regression"
        assert payload["backend"] == "numpy"
        assert payload["uptime_seconds"] >= 0

    def test_metrics_schema_and_counters(self, client, server_spice):
        before = client.metrics()
        client.annotate(server_spice, name="METRICS", max_candidates=4)
        after = client.metrics()
        assert after["requests_total"] > before["requests_total"]
        assert after["designs_annotated_total"] >= before["designs_annotated_total"] + 1
        assert after["batches_total"] >= 1
        assert set(after["latency"]) == {"count", "sum_seconds",
                                         "p50_seconds", "p95_seconds"}
        assert "le_inf" in after["batch_size_histogram"]

    def test_unknown_route_and_method(self, client):
        with pytest.raises(ServeError) as not_found:
            client._request_json("GET", "/nope")
        assert not_found.value.status == 404
        with pytest.raises(ServeError) as bad_method:
            client._request_json("GET", "/annotate")
        assert bad_method.value.status == 405
        assert bad_method.value.kind == "method_not_allowed"


class TestAnnotate:
    def test_single_design_matches_local_engine_bytes(
            self, client, server_engine, server_spice, workload):
        raw = client.annotate_raw({
            "spice": server_spice, "name": "APP",
            "pairs": [list(pair) for pair in workload], "seed": 9,
        })
        assert raw.strip() == local_reference(server_engine, server_spice,
                                              "APP", workload, seed=9)

    def test_auto_candidates_match_local_engine(self, client, server_engine,
                                                server_spice):
        report = client.annotate(server_spice, name="AUTO", max_candidates=6,
                                 seed=2)
        local = json.loads(local_reference(server_engine, server_spice, "AUTO",
                                           None, seed=2, max_candidates=6))
        assert report == local

    def test_threshold_override(self, client, server_spice, workload):
        lax = client.annotate(server_spice, name="THR",
                              pairs=workload, threshold=0.0)
        strict = client.annotate(server_spice, name="THR",
                                 pairs=workload, threshold=1.0)
        assert lax["threshold"] == 0.0 and strict["threshold"] == 1.0
        assert lax["num_predicted_couplings"] == len(workload)
        assert strict["num_predicted_couplings"] == 0
        # Probabilities themselves are threshold-independent.
        assert ([r["coupling_probability"] for r in lax["records"]]
                == [r["coupling_probability"] for r in strict["records"]])

    def test_multi_design_streams_in_order(self, client, server_spice):
        arrivals = []
        reports = client.annotate_many(
            [{"spice": server_spice, "name": f"D{i}", "max_candidates": 3}
             for i in range(4)],
            seed=0, stream=True, on_result=lambda r: arrivals.append(r["design"]))
        assert [r["design"] for r in reports] == ["D0", "D1", "D2", "D3"]
        assert arrivals == ["D0", "D1", "D2", "D3"]
        # Per-design seeds are SeedSequence-spawned by position: same text,
        # different candidates stay per-design deterministic.
        again = client.annotate_many(
            [{"spice": server_spice, "name": f"D{i}", "max_candidates": 3}
             for i in range(4)], seed=0, stream=False)
        assert again == reports

    def test_concurrent_requests_byte_identical_to_sequential(
            self, client, server_engine, server_spice, workload):
        """Coalesced cross-request batches must not change any response."""
        requests = [{"spice": server_spice, "name": "APP",
                     "pairs": [list(pair) for pair in workload],
                     "seed": 9} for _ in range(8)]
        expected = local_reference(server_engine, server_spice, "APP",
                                   workload, seed=9)
        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            raws = list(pool.map(client.annotate_raw, requests))
        assert all(raw.strip() == expected for raw in raws)

    def test_empty_pairs_yields_empty_report(self, client, server_spice):
        report = client.annotate(server_spice, name="EMPTY", pairs=[])
        assert report["status"] == "ok"
        assert report["records"] == []
        assert report["num_candidates"] == 0


class TestGroupingSensitiveExtraction:
    def test_eager_chunk_path_matches_local_engine(self, tiny_config,
                                                   server_spice):
        """With hub subsampling the server must reproduce serial chunk RNG."""
        from repro.core import CircuitGPSPipeline, build_model
        from repro.core.serve import AnnotationEngine
        from repro.utils import seed_all

        seed_all(0)
        link_model = build_model(tiny_config)
        reg_model = build_model(tiny_config)
        pipeline = CircuitGPSPipeline.from_models(
            tiny_config, link_model,
            heads={("edge_regression", "all"): reg_model})
        engine = AnnotationEngine(pipeline, workers=0, batch_size=4)
        assert not engine.deterministic_extraction
        graph = netlist_to_graph(parse_spice(server_spice, name="HUB").flatten())
        pairs = default_candidate_pairs(graph, max_candidates=10,
                                        rng=np.random.default_rng(1))
        expected = local_reference(engine, server_spice, "HUB", pairs, seed=4)
        with ThreadedServer(engine, ServerConfig(port=0, batch_window_ms=2.0)) as srv:
            raw = ServeClient(srv.url).annotate_raw({
                "spice": server_spice, "name": "HUB",
                "pairs": [list(pair) for pair in pairs], "seed": 4})
        assert raw.strip() == expected


class TestCliRemote:
    def test_annotate_remote_parity_and_json(self, server, server_spice,
                                             tmp_path, capsys):
        from repro.core.cli import main

        netlist = tmp_path / "remote_macro.sp"
        netlist.write_text(server_spice)
        json_out = tmp_path / "remote_report.json"
        code = main(["annotate", "-", str(netlist), "--remote", server.url,
                     "--max-candidates", "5", "--seed", "3",
                     "--json", str(json_out)])
        assert code == 0
        out = capsys.readouterr().out
        assert "remote_macro" in out and "predicted coupling(s)" in out
        payload = json.loads(json_out.read_text())
        assert payload["design"] == "remote_macro"
        assert payload["status"] == "ok"
        assert len(payload["records"]) == 5

    def test_annotate_remote_rejects_annotated_out(self, server, server_spice,
                                                   tmp_path, capsys):
        from repro.core.cli import main

        netlist = tmp_path / "x.sp"
        netlist.write_text(server_spice)
        code = main(["annotate", "-", str(netlist), "--remote", server.url,
                     "--annotated-out", str(tmp_path / "out")])
        assert code == 2
        assert "--annotated-out" in capsys.readouterr().err

    def test_annotate_remote_reports_failures(self, server, server_spice,
                                              tmp_path, capsys):
        from repro.core.cli import main

        good = tmp_path / "good.sp"
        good.write_text(server_spice)
        bad = tmp_path / "bad.sp"
        bad.write_text("C1 a b 1f\n.end\n")  # graph has no such pair nodes
        code = main(["annotate", "-", str(good), str(bad),
                     "--remote", server.url, "--pairs", "BL0,BL1"])
        captured = capsys.readouterr()
        assert code == 2
        assert "BL0" in captured.out          # good design still printed
        assert "not found" in captured.err    # bad design's error surfaced


class TestTimeouts:
    def test_slow_request_times_out_with_504(self, server_engine, server_spice):
        config = ServerConfig(port=0, batch_window_ms=0.0,
                              request_timeout_s=0.001)
        with ThreadedServer(server_engine, config) as srv:
            client = ServeClient(srv.url, timeout=10.0)
            with pytest.raises(ServeError) as excinfo:
                client.annotate(server_spice, name="SLOW", max_candidates=50)
            assert excinfo.value.status == 504
            assert excinfo.value.kind == "timeout"
            # The daemon survives and still serves /healthz.
            assert client.healthz()["status"] == "ok"
