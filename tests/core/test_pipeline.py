"""Tests for the high-level CircuitGPSPipeline API."""

import numpy as np
import pytest

from repro.core import CircuitGPSPipeline, DesignData, ExperimentConfig


@pytest.fixture(scope="module")
def pipeline(tiny_config, small_design, small_test_design):
    pipe = CircuitGPSPipeline(tiny_config)
    pipe.add_design(small_design)
    pipe.add_design(small_test_design)
    pipe.pretrain()
    return pipe


class TestPipeline:
    def test_split_properties(self, pipeline, small_design, small_test_design):
        assert small_design in pipeline.train_designs
        assert small_test_design in pipeline.test_designs

    def test_missing_design_raises(self, pipeline):
        with pytest.raises(KeyError):
            pipeline.evaluate_link("NOT_LOADED")

    def test_pretrain_required_before_link_eval(self, tiny_config, small_test_design):
        pipe = CircuitGPSPipeline(tiny_config)
        pipe.add_design(small_test_design)
        with pytest.raises(RuntimeError):
            pipe.evaluate_link(small_test_design.name)

    def test_pretrain_without_training_designs_raises(self, tiny_config, small_test_design):
        pipe = CircuitGPSPipeline(tiny_config)
        pipe.add_design(small_test_design)
        with pytest.raises(RuntimeError):
            pipe.pretrain()

    def test_evaluate_link_zero_shot(self, pipeline, small_test_design):
        metrics = pipeline.evaluate_link(small_test_design.name)
        assert metrics["auc"] > 0.5

    def test_finetune_and_evaluate_regression(self, pipeline, small_test_design):
        metrics = pipeline.evaluate_regression(small_test_design.name, mode="all")
        assert np.isfinite(metrics["mae"])
        assert ("edge_regression", "all") in pipeline.finetune_results

    def test_predict_couplings_on_user_circuit(self, pipeline, small_test_design):
        graph = small_test_design.graph
        link = graph.links[0]
        pair = (graph.node_names[link.source], graph.node_names[link.target])
        records = pipeline.predict_couplings(small_test_design.circuit, [pair])
        assert len(records) == 1
        record = records[0]
        assert 0.0 <= record["coupling_probability"] <= 1.0
        assert record["capacitance_farad"] >= 0.0

    def test_predict_couplings_unknown_pair_raises(self, pipeline, small_test_design):
        with pytest.raises(KeyError):
            pipeline.predict_couplings(small_test_design.circuit, [("nope", "also_nope")])

    def test_save_and_load_roundtrip(self, pipeline, small_test_design, tmp_path, tiny_config):
        path = tmp_path / "meta_learner.npz"
        pipeline.save(path)
        fresh = CircuitGPSPipeline(tiny_config)
        fresh.add_design(small_test_design)
        fresh.load(path)
        original = pipeline.pretrain_result.model.state_dict()
        loaded = fresh.pretrain_result.model.state_dict()
        for name, value in original.items():
            np.testing.assert_allclose(loaded[name], value, err_msg=name)
        metrics = fresh.evaluate_link(small_test_design.name)
        assert metrics["auc"] > 0.5

    def test_save_before_pretrain_raises(self, tiny_config, tmp_path):
        pipe = CircuitGPSPipeline(tiny_config)
        with pytest.raises(RuntimeError):
            pipe.save(tmp_path / "x.npz")

    def test_load_designs_builds_paper_suite(self, tiny_config):
        pipe = CircuitGPSPipeline(tiny_config.with_data(scale=0.25))
        designs = pipe.load_designs(names=["SSRAM", "TIMING_CONTROL"])
        assert set(designs) == {"SSRAM", "TIMING_CONTROL"}
        assert isinstance(designs["SSRAM"], DesignData)
        assert pipe.train_designs and pipe.test_designs
