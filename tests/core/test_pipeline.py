"""Tests for the high-level CircuitGPSPipeline API."""

import numpy as np
import pytest

from repro.core import (
    PIPELINE_SCHEMA,
    PIPELINE_SCHEMA_VERSION,
    CircuitGPSPipeline,
    DesignData,
    ExperimentConfig,
)
from repro.netlist import parse_spice_file, ssram, write_spice
from repro.utils import CheckpointError, checkpoint_schema, load_checkpoint, save_checkpoint


@pytest.fixture(scope="module")
def pipeline(tiny_config, small_design, small_test_design):
    pipe = CircuitGPSPipeline(tiny_config)
    pipe.add_design(small_design)
    pipe.add_design(small_test_design)
    pipe.pretrain()
    return pipe


class TestPipeline:
    def test_split_properties(self, pipeline, small_design, small_test_design):
        assert small_design in pipeline.train_designs
        assert small_test_design in pipeline.test_designs

    def test_missing_design_raises(self, pipeline):
        with pytest.raises(KeyError):
            pipeline.evaluate_link("NOT_LOADED")

    def test_pretrain_required_before_link_eval(self, tiny_config, small_test_design):
        pipe = CircuitGPSPipeline(tiny_config)
        pipe.add_design(small_test_design)
        with pytest.raises(RuntimeError):
            pipe.evaluate_link(small_test_design.name)

    def test_pretrain_without_training_designs_raises(self, tiny_config, small_test_design):
        pipe = CircuitGPSPipeline(tiny_config)
        pipe.add_design(small_test_design)
        with pytest.raises(RuntimeError):
            pipe.pretrain()

    def test_evaluate_link_zero_shot(self, pipeline, small_test_design):
        metrics = pipeline.evaluate_link(small_test_design.name)
        assert metrics["auc"] > 0.5

    def test_finetune_and_evaluate_regression(self, pipeline, small_test_design):
        metrics = pipeline.evaluate_regression(small_test_design.name, mode="all")
        assert np.isfinite(metrics["mae"])
        assert ("edge_regression", "all") in pipeline.finetune_results

    def test_predict_couplings_on_user_circuit(self, pipeline, small_test_design):
        graph = small_test_design.graph
        link = graph.links[0]
        pair = (graph.node_names[link.source], graph.node_names[link.target])
        records = pipeline.predict_couplings(small_test_design.circuit, [pair])
        assert len(records) == 1
        record = records[0]
        assert 0.0 <= record["coupling_probability"] <= 1.0
        assert record["capacitance_farad"] >= 0.0

    def test_predict_couplings_unknown_pair_raises(self, pipeline, small_test_design):
        with pytest.raises(KeyError):
            pipeline.predict_couplings(small_test_design.circuit, [("nope", "also_nope")])

    def test_save_and_load_roundtrip(self, pipeline, small_test_design, tmp_path, tiny_config):
        path = tmp_path / "meta_learner.npz"
        pipeline.save(path)
        fresh = CircuitGPSPipeline(tiny_config)
        fresh.add_design(small_test_design)
        fresh.load(path)
        original = pipeline.pretrain_result.model.state_dict()
        loaded = fresh.pretrain_result.model.state_dict()
        for name, value in original.items():
            np.testing.assert_allclose(loaded[name], value, err_msg=name)
        metrics = fresh.evaluate_link(small_test_design.name)
        assert metrics["auc"] > 0.5

    def test_save_before_pretrain_raises(self, tiny_config, tmp_path):
        pipe = CircuitGPSPipeline(tiny_config)
        with pytest.raises(RuntimeError):
            pipe.save(tmp_path / "x.npz")

    def test_full_artifact_roundtrip_annotate(self, pipeline, tmp_path):
        """Train -> save -> load in a fresh pipeline -> identical annotations.

        The full-pipeline artifact must carry everything inference needs
        (backbone, fine-tuned head, normaliser, config): the loaded pipeline
        is never allowed to retrain, and its predictions on a bundled SPICE
        netlist must match the original bit-for-bit.
        """
        # Ensure a fine-tuned head exists (module fixture trains lazily).
        if ("edge_regression", "all") not in pipeline.finetune_results:
            pipeline.finetune(mode="all")
        netlist_path = tmp_path / "bundled_macro.sp"
        macro = ssram(rows=4, cols=4)
        macro.name = "BUNDLED_MACRO"
        netlist_path.write_text(write_spice(macro))
        circuit = parse_spice_file(netlist_path).flatten()
        pairs = [("BL0", "BL1"), ("BL1", "BLB1"), ("WL0", "WL1")]

        artifact_dir = tmp_path / "ckpt"
        path = pipeline.save(artifact_dir)
        assert path == artifact_dir / "pipeline.npz"
        assert checkpoint_schema(path) == (PIPELINE_SCHEMA, PIPELINE_SCHEMA_VERSION)

        loaded = CircuitGPSPipeline.from_checkpoint(artifact_dir)
        assert set(loaded.finetune_results) >= {("edge_regression", "all")}
        assert loaded.normalizer.cap_min == pipeline.normalizer.cap_min

        original = pipeline.predict_couplings(circuit, pairs)
        reloaded = loaded.predict_couplings(circuit, pairs)
        assert len(reloaded) == len(pairs)
        for a, b in zip(original, reloaded):
            assert a["pair"] == b["pair"]
            assert a["coupling_probability"] == pytest.approx(
                b["coupling_probability"], rel=1e-12)
            assert a["capacitance_farad"] == pytest.approx(
                b["capacitance_farad"], rel=1e-12)
        # Loading must not have scheduled any training.
        assert loaded.pretrain_result.history.name == "loaded"

    def test_optimizer_state_survives_roundtrip(self, pipeline, tmp_path):
        """Resumed training keeps its Adam moments instead of silently
        restarting from zeros (the pre-v2 behaviour)."""
        trainer = pipeline.pretrain_result.trainer
        assert trainer.optimizer._t > 0  # the fixture actually trained
        path = pipeline.save(tmp_path / "resume.npz")
        loaded = CircuitGPSPipeline.from_checkpoint(path)
        restored = loaded.pretrain_result.trainer.optimizer
        assert restored._t == trainer.optimizer._t
        for original_m, restored_m in zip(trainer.optimizer._m, restored._m):
            np.testing.assert_allclose(restored_m, original_m)
        for original_v, restored_v in zip(trainer.optimizer._v, restored._v):
            np.testing.assert_allclose(restored_v, original_v)
        if trainer.schedule is not None:
            assert (loaded.pretrain_result.trainer._pending_schedule_state
                    is not None)

    def test_v1_artifact_loads_with_fresh_optimizer_state(self, pipeline, tmp_path):
        """Backward compatibility: schema-v1 archives (no optim.* keys) load."""
        path = pipeline.save(tmp_path / "v2.npz")
        state, metadata = load_checkpoint(path)
        legacy_state = {key: value for key, value in state.items()
                        if not key.startswith("optim.")}
        v1 = tmp_path / "v1.npz"
        save_checkpoint(v1, legacy_state, metadata, schema=PIPELINE_SCHEMA, version=1)
        loaded = CircuitGPSPipeline.from_checkpoint(v1)
        assert loaded.pretrain_result.trainer.optimizer._t == 0
        np.testing.assert_allclose(
            loaded.pretrain_result.model.state_dict()["node_encoder.weight"],
            pipeline.pretrain_result.model.state_dict()["node_encoder.weight"],
        )

    def test_resave_after_load_keeps_schedule_state(self, pipeline, tmp_path):
        """load -> save (no fit in between) must not drop the LR-schedule
        position that the loaded artifact carried."""
        first = pipeline.save(tmp_path / "first.npz")
        schedule_keys = {key for key in load_checkpoint(first)[0]
                         if key.startswith("optim.pretrain.schedule.")}
        assert schedule_keys, "fixture training produced no schedule state"
        loaded = CircuitGPSPipeline.from_checkpoint(first)
        second = loaded.save(tmp_path / "second.npz")
        state, _ = load_checkpoint(second)
        for key in schedule_keys:
            assert key in state, f"re-saved artifact dropped {key}"

    def test_pre_buffer_performer_archive_still_loads(self, tmp_path, tiny_config,
                                                      small_design):
        """Archives written before Performer projections were persisted lack
        the ``*.projection`` buffer keys; loading keeps the fresh draw and
        warns instead of raising."""
        config = tiny_config.with_model(attention="performer")
        pipe = CircuitGPSPipeline(config)
        pipe.add_design(small_design)
        pipe.pretrain()
        path = pipe.save(tmp_path / "performer.npz")
        state, metadata = load_checkpoint(path)
        stripped = {key: value for key, value in state.items()
                    if not key.endswith(".projection")}
        assert len(stripped) < len(state)
        legacy = tmp_path / "pre_buffer.npz"
        save_checkpoint(legacy, stripped, metadata, schema=PIPELINE_SCHEMA, version=1)
        loaded = CircuitGPSPipeline.from_checkpoint(legacy)  # must not raise
        attn = loaded.pretrain_result.model.layers[0].attention
        assert np.all(np.isfinite(attn.projection))

    def test_incompatible_optimizer_state_is_skipped_not_fatal(self, pipeline, tmp_path):
        """A head-only fine-tune optimises fewer parameters than the reloaded
        full-model trainer tracks; the load warns and starts fresh moments."""
        path = pipeline.save(tmp_path / "mismatch.npz")
        state, metadata = load_checkpoint(path)
        # Drop one moment entry to fake a parameter-count mismatch.
        victim = sorted(key for key in state if key.startswith("optim.pretrain.optimizer.m."))[0]
        state.pop(victim)
        bad = tmp_path / "mismatched.npz"
        save_checkpoint(bad, state, metadata, schema=PIPELINE_SCHEMA,
                        version=PIPELINE_SCHEMA_VERSION)
        loaded = CircuitGPSPipeline.from_checkpoint(bad)  # must not raise
        assert loaded.pretrain_result.trainer.optimizer._t == 0

    def test_load_rejects_tampered_artifact(self, pipeline, tmp_path):
        path = pipeline.save(tmp_path / "artifact.npz")
        state, metadata = load_checkpoint(path)
        state["finetune.bogus.mode.weight"] = np.zeros(2)
        bad = tmp_path / "tampered.npz"
        save_checkpoint(bad, state, metadata, schema=PIPELINE_SCHEMA,
                        version=PIPELINE_SCHEMA_VERSION)
        with pytest.raises(CheckpointError, match="unexpected"):
            CircuitGPSPipeline.from_checkpoint(bad)

    def test_load_rejects_future_schema_version(self, pipeline, tmp_path):
        path = pipeline.save(tmp_path / "artifact.npz")
        state, metadata = load_checkpoint(path)
        future = tmp_path / "future.npz"
        save_checkpoint(future, state, metadata, schema=PIPELINE_SCHEMA,
                        version=PIPELINE_SCHEMA_VERSION + 1)
        with pytest.raises(CheckpointError, match="version"):
            CircuitGPSPipeline.from_checkpoint(future)

    def test_load_rejects_foreign_schema(self, pipeline, tmp_path):
        path = pipeline.save(tmp_path / "artifact.npz")
        state, metadata = load_checkpoint(path)
        foreign = tmp_path / "foreign.npz"
        save_checkpoint(foreign, state, metadata, schema="some-other-artifact")
        with pytest.raises(CheckpointError, match="schema"):
            CircuitGPSPipeline.from_checkpoint(foreign)

    def test_legacy_model_checkpoint_still_loads(self, pipeline, tmp_path):
        """Pre-schema checkpoints (bare backbone state) keep working."""
        model = pipeline.pretrain_result.model
        legacy = tmp_path / "legacy.npz"
        save_checkpoint(legacy, model.state_dict(),
                        metadata={"model": model.config(),
                                  "experiment": pipeline.config.as_dict()})
        fresh = CircuitGPSPipeline()  # default config: must be replaced by the stored one
        fresh.load(legacy)
        np.testing.assert_allclose(
            fresh.pretrain_result.model.state_dict()["node_encoder.weight"],
            model.state_dict()["node_encoder.weight"],
        )
        # The training-time experiment config (sampling parameters) is restored.
        assert fresh.config.data == pipeline.config.data

    def test_legacy_checkpoint_with_missing_keys_raises(self, pipeline, tmp_path):
        model = pipeline.pretrain_result.model
        state = dict(model.state_dict())
        state.pop(sorted(state)[0])
        legacy = tmp_path / "broken.npz"
        save_checkpoint(legacy, state,
                        metadata={"model": model.config(),
                                  "experiment": pipeline.config.as_dict()})
        fresh = CircuitGPSPipeline(pipeline.config)
        with pytest.raises(CheckpointError, match="missing"):
            fresh.load(legacy)

    def test_load_designs_builds_paper_suite(self, tiny_config):
        pipe = CircuitGPSPipeline(tiny_config.with_data(scale=0.25))
        designs = pipe.load_designs(names=["SSRAM", "TIMING_CONTROL"])
        assert set(designs) == {"SSRAM", "TIMING_CONTROL"}
        assert isinstance(designs["SSRAM"], DesignData)
        assert pipe.train_designs and pipe.test_designs
