"""Tests for the dataset/loader subsystem and the positional-encoding cache."""

import numpy as np
import pytest

from repro.core.data import (
    DataLoader,
    PECache,
    SubgraphDataset,
    as_dataset,
    attach_pe,
    attach_pe_batch,
    default_pe_cache,
    set_default_pe_cache,
)
from repro.core.datasets import build_link_samples
from repro.graph import extract_enclosing_subgraphs


@pytest.fixture()
def samples(small_design, tiny_config):
    return build_link_samples(small_design, tiny_config.data, pe_kind="dspd", rng=0)


@pytest.fixture()
def fresh_cache():
    """Swap in an empty default cache for the duration of a test."""
    cache = PECache(capacity=256)
    previous = set_default_pe_cache(cache)
    yield cache
    set_default_pe_cache(previous)


class TestPECache:
    def test_put_get_and_hit_counting(self, samples):
        cache = PECache(capacity=8)
        key = PECache.key_for(samples[0], "dspd")
        assert cache.get(key) is None
        cache.put(key, samples[0].pe)
        assert cache.get(key) is samples[0].pe
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction(self, samples):
        cache = PECache(capacity=2)
        keys = [PECache.key_for(s, "dspd") for s in samples[:3]]
        cache.put(keys[0], samples[0].pe)
        cache.put(keys[1], samples[1].pe)
        cache.get(keys[0])                    # key 0 is now most-recently used
        cache.put(keys[2], samples[2].pe)     # evicts key 1
        assert cache.get(keys[0]) is not None
        assert cache.get(keys[1]) is None
        assert len(cache) == 2

    def test_key_distinguishes_topology(self, samples):
        a, b = samples[0], samples[1]
        assert PECache.key_for(a, "dspd") != PECache.key_for(b, "dspd")
        assert PECache.key_for(a, "dspd") != PECache.key_for(a, "rwse")

    def test_byte_budget_evicts_lru_before_entry_cap(self):
        """Regression: eviction used to count entries only, so a few huge
        PEs could blow memory while the entry count sat far below capacity."""
        row = np.zeros((100,), dtype=np.float64)  # 800 bytes per entry
        cache = PECache(capacity=1000, capacity_bytes=2000)
        for index in range(3):
            cache.put(("k", index), row.copy())
        assert len(cache) == 2                     # third put evicted ("k", 0)
        assert cache.size_bytes == 1600
        assert cache.get(("k", 0)) is None
        assert cache.get(("k", 2)) is not None

    def test_oversized_single_value_does_not_stick(self):
        cache = PECache(capacity=8, capacity_bytes=100)
        cache.put(("big",), np.zeros(1000, dtype=np.float64))
        assert len(cache) == 0
        assert cache.size_bytes == 0

    def test_overwrite_same_key_updates_byte_accounting(self):
        cache = PECache(capacity=8, capacity_bytes=10_000)
        cache.put(("k",), np.zeros(100, dtype=np.float64))
        cache.put(("k",), np.zeros(50, dtype=np.float64))
        assert len(cache) == 1
        assert cache.size_bytes == 400

    def test_byte_budget_disabled_with_none(self):
        cache = PECache(capacity=4, capacity_bytes=None)
        for index in range(4):
            cache.put(("k", index), np.zeros(10_000, dtype=np.float64))
        assert len(cache) == 4

    def test_clear_resets_byte_accounting(self):
        cache = PECache(capacity=8, capacity_bytes=10_000)
        cache.put(("k",), np.zeros(100, dtype=np.float64))
        cache.clear()
        assert cache.size_bytes == 0 and len(cache) == 0

    def test_invalid_byte_budget_rejected(self):
        with pytest.raises(ValueError):
            PECache(capacity_bytes=0)

    def test_invalidate_design_drops_only_that_design(self):
        cache = PECache()
        cache.put(("DESIGN_A", 1, 2), np.zeros(4))
        cache.put(("DESIGN_A", 3, 4), np.zeros(4))
        cache.put(("DESIGN_B", 1, 2), np.zeros(4))
        assert cache.invalidate_design("DESIGN_A") == 2
        assert cache.get(("DESIGN_B", 1, 2)) is not None
        assert len(cache) == 1
        assert cache.size_bytes == 32

    def test_attach_pe_hits_on_second_call(self, samples):
        cache = PECache()
        subgraph = samples[0]
        subgraph.pe = None
        first = attach_pe(subgraph, "dspd", cache=cache)
        subgraph.pe = None
        second = attach_pe(subgraph, "dspd", cache=cache)
        assert second is first
        assert cache.hits == 1 and cache.misses == 1
        assert subgraph.pe is first

    def test_attach_pe_batch_mixed_hits(self, samples):
        cache = PECache()
        for s in samples:
            s.pe = None
        attach_pe_batch(samples[:4], "dspd", cache=cache)
        assert cache.misses == 4 and cache.hits == 0
        for s in samples[:8]:
            s.pe = None
        attach_pe_batch(samples[:8], "dspd", cache=cache)
        assert cache.hits == 4 and cache.misses == 8
        assert all(s.pe is not None for s in samples[:8])

    def test_repeated_build_link_samples_hits_cache(self, small_design, tiny_config,
                                                    fresh_cache):
        build_link_samples(small_design, tiny_config.data, pe_kind="dspd", rng=0)
        assert fresh_cache.hits == 0
        misses = fresh_cache.misses
        build_link_samples(small_design, tiny_config.data, pe_kind="dspd", rng=0)
        # Same rng -> identical subgraphs -> every PE comes from the cache.
        assert fresh_cache.hits == misses
        assert fresh_cache.misses == misses


class TestSubgraphDataset:
    def test_from_samples_roundtrip(self, samples):
        dataset = SubgraphDataset.from_samples(samples)
        assert len(dataset) == len(samples)
        assert dataset[0] is samples[0]
        assert dataset[-1] is samples[-1]
        assert list(dataset) == samples
        np.testing.assert_allclose(dataset.labels(), [s.label for s in samples])
        np.testing.assert_allclose(dataset.targets(), [s.target for s in samples])

    def test_bool_and_out_of_range(self, samples):
        assert SubgraphDataset.from_samples(samples)
        assert not SubgraphDataset.from_samples([])
        with pytest.raises(IndexError):
            SubgraphDataset.from_samples(samples)[len(samples)]

    def test_subset_and_shuffle(self, samples):
        dataset = SubgraphDataset.from_samples(samples)
        sub = dataset.subset([2, 0, 5])
        assert len(sub) == 3
        assert sub[0] is samples[2] and sub[2] is samples[5]
        shuffled = dataset.shuffled(rng=0)
        assert len(shuffled) == len(dataset)
        assert sorted(s.label for s in shuffled) == sorted(s.label for s in samples)

    def test_split_head_tail(self, samples):
        dataset = SubgraphDataset.from_samples(samples)
        head, tail = dataset.split(0.25)
        assert len(head) == int(round(len(samples) * 0.25))
        assert len(head) + len(tail) == len(samples)
        assert head[0] is samples[0]

    def test_lazy_from_links_deterministic(self, small_design, fresh_cache):
        graph = small_design.graph
        links = graph.links[:10]
        dataset = SubgraphDataset.from_links(graph, links, hops=1, pe_kind="dspd", seed=5)
        assert len(dataset) == 10
        first = dataset[3]
        second = dataset[3]
        np.testing.assert_array_equal(first.node_ids, second.node_ids)
        np.testing.assert_allclose(first.pe, second.pe)
        # Identical extraction means the PE cache served the second access.
        assert fresh_cache.hits >= 1

    def test_lazy_labels_without_extraction(self, small_design):
        graph = small_design.graph
        links = graph.links[:6]
        dataset = SubgraphDataset.from_links(graph, links, pe_kind=None)
        np.testing.assert_allclose(dataset.labels(), [l.label for l in links])
        np.testing.assert_array_equal(dataset.link_types(), [l.link_type for l in links])
        assert not dataset._memo  # labels came from the links, not extraction

    def test_materialize_matches_lazy(self, small_design):
        graph = small_design.graph
        dataset = SubgraphDataset.from_links(graph, graph.links[:5], pe_kind=None, seed=1)
        materialized = dataset.materialize()
        for a, b in zip(dataset, materialized):
            np.testing.assert_array_equal(a.node_ids, b.node_ids)

    def test_lazy_matches_batched_extraction(self, small_design):
        graph = small_design.graph
        links = graph.links[:8]
        dataset = SubgraphDataset.from_links(graph, links, hops=1, pe_kind=None)
        batched = extract_enclosing_subgraphs(graph, links, hops=1)
        for lazy_sample, batch_sample in zip(dataset, batched):
            np.testing.assert_array_equal(lazy_sample.node_ids, batch_sample.node_ids)
            np.testing.assert_array_equal(lazy_sample.edge_index, batch_sample.edge_index)

    def test_as_dataset_idempotent(self, samples):
        dataset = SubgraphDataset.from_samples(samples)
        assert as_dataset(dataset) is dataset
        assert as_dataset(samples)[0] is samples[0]
        loader = DataLoader(dataset, batch_size=4)
        assert as_dataset(loader) is dataset


class TestDataLoader:
    def test_batches_cover_all_samples(self, samples):
        loader = DataLoader(samples, batch_size=16, shuffle=False)
        batches = list(loader)
        assert len(batches) == len(loader)
        assert sum(b.num_graphs for b in batches) == len(samples)
        np.testing.assert_allclose(
            np.concatenate([b.labels for b in batches]),
            [s.label for s in samples],
        )

    def test_drop_last(self, samples):
        count = (len(samples) // 16) * 16
        loader = DataLoader(samples[: count + 3], batch_size=16, shuffle=False, drop_last=True)
        assert sum(b.num_graphs for b in loader) == count

    def test_shuffle_changes_between_epochs(self, samples):
        loader = DataLoader(samples, batch_size=len(samples), shuffle=True, rng=0)
        first = next(iter(loader)).labels
        second = next(iter(loader)).labels
        assert not np.array_equal(first, second)

    def test_shuffle_deterministic_given_rng(self, samples):
        a = next(iter(DataLoader(samples, batch_size=32, shuffle=True, rng=7))).labels
        b = next(iter(DataLoader(samples, batch_size=32, shuffle=True, rng=7))).labels
        np.testing.assert_allclose(a, b)

    def test_invalid_batch_size(self, samples):
        with pytest.raises(ValueError):
            DataLoader(samples, batch_size=0)
