"""Tests for chip-scale sharded annotation and incremental re-annotation.

Covers the shard planner (``repro.core.shard``), the sharded engine path
(:meth:`AnnotationEngine.annotate_sharded`) and ECO re-annotation
(:meth:`AnnotationEngine.reannotate`).  The central contract: with explicit
pairs and deterministic extraction, sharded results equal unsharded results
at the canonical wire encoding, and incremental re-annotation carries
unaffected records over byte-identically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.serve import NetlistAnnotation, default_candidate_pairs
from repro.core.shard import (
    FlatShardPlan,
    HierarchyShardPlan,
    Shard,
    plan_shards,
)
from repro.core.server import dumps_canonical
from repro.graph import netlist_to_graph
from repro.netlist import (Circuit, NetlistDelta, Resistor, hierarchical_sram,
                           ssram)


@pytest.fixture(scope="module")
def hier_circuit() -> Circuit:
    return ssram(rows=4, cols=2)


@pytest.fixture(scope="module")
def flat_circuit(hier_circuit) -> Circuit:
    return hier_circuit.flatten()


@pytest.fixture(scope="module")
def full_graph(flat_circuit):
    return netlist_to_graph(flat_circuit)


@pytest.fixture(scope="module")
def pairs(full_graph):
    """Explicit candidate pairs drawn over the whole design."""
    return default_candidate_pairs(full_graph, max_candidates=24,
                                   rng=np.random.default_rng(3))


def canonical_records(annotation) -> bytes:
    return dumps_canonical(annotation.records)


# --------------------------------------------------------------------------- #
# Planner
# --------------------------------------------------------------------------- #
class TestPlanShards:
    def test_hierarchical_circuit_uses_hierarchy_strategy(self, hier_circuit):
        plan = plan_shards(hier_circuit, num_shards=3, hops=2)
        assert isinstance(plan, HierarchyShardPlan)
        assert plan.strategy == "hierarchy"
        assert 1 <= plan.num_shards <= 3
        cells = len(hier_circuit.devices) + len(hier_circuit.instances)
        assert sum(shard.num_owned for shard in plan.shards) == cells
        # Shard sources stay hierarchical; flattening is the worker's job.
        assert all(isinstance(shard.source, Circuit) for shard in plan.shards)

    def test_flat_circuit_falls_back_to_flat_strategy(self, flat_circuit):
        plan = plan_shards(flat_circuit, num_shards=3, hops=2)
        assert isinstance(plan, FlatShardPlan)
        assert plan.strategy == "flat"

    def test_bare_graph_uses_flat_strategy(self, full_graph):
        plan = plan_shards(full_graph, num_shards=4, hops=1)
        assert plan.strategy == "flat"
        assert sum(s.num_owned for s in plan.shards) == full_graph.num_nodes

    def test_rejects_unshardable_input(self):
        with pytest.raises(TypeError, match="cannot shard"):
            plan_shards({"not": "a design"}, num_shards=2, hops=1)

    def test_rejects_nonpositive_shard_count(self, full_graph):
        with pytest.raises(ValueError, match="num_shards"):
            plan_shards(full_graph, num_shards=0, hops=1)

    def test_flat_halo_must_cover_extraction_hops(self, full_graph):
        with pytest.raises(ValueError, match="halo_hops"):
            FlatShardPlan(full_graph, num_shards=2, hops=3, halo_hops=1)

    def test_hierarchy_cell_halo_must_cover_extraction_hops(self, hier_circuit):
        with pytest.raises(ValueError, match="cell_halo"):
            HierarchyShardPlan(hier_circuit, num_shards=2, hops=8, cell_halo=1)

    def test_every_node_has_exactly_one_owner(self, hier_circuit, full_graph):
        plan = plan_shards(hier_circuit, num_shards=3, hops=2)
        for name in full_graph.node_names:
            owner = plan.owner_of(name)
            owners = [s.index for s in plan.shards if s.owns_name(name)]
            assert owners == [owner]

    def test_owner_of_unknown_name_raises(self, hier_circuit):
        plan = plan_shards(hier_circuit, num_shards=2, hops=2)
        with pytest.raises(KeyError):
            plan.owner_of("NOT_A_NODE")

    def test_describe_is_json_safe(self, hier_circuit):
        plan = plan_shards(hier_circuit, num_shards=3, hops=2)
        summary = plan.describe()
        assert summary["strategy"] == "hierarchy"
        assert summary["num_shards"] == plan.num_shards
        assert summary["owned_sizes"] == [s.num_owned for s in plan.shards]

    def test_assign_routes_cross_shard_pairs_to_union_shards(
            self, hier_circuit, pairs):
        plan = plan_shards(hier_circuit, num_shards=3, hops=2)
        assignments = plan.assign(pairs)
        covered = sorted(p for _, positions in assignments for p in positions)
        assert covered == list(range(len(pairs)))
        for shard, positions in assignments:
            for position in positions:
                name_a, name_b = pairs[position]
                # The annotating shard owns both anchors (union shards own
                # the merged set of both constituents).
                assert shard.owns_name(name_a) and shard.owns_name(name_b)

    def test_shard_owns_name_resolves_scopes_nets_and_pins(self):
        shard = Shard(index=0, source=None, num_owned=2,
                      owned_nets={"BL0", "M1"}, owned_scopes={"XCELL"})
        assert shard.owns_name("BL0")
        assert shard.owns_name("M1:D")          # device pin -> device name
        assert shard.owns_name("XCELL/int")     # hierarchical scope
        assert not shard.owns_name("WL3")
        assert not shard.owns_name("XOTHER/int")


# --------------------------------------------------------------------------- #
# Sharded annotation (engine level)
# --------------------------------------------------------------------------- #
class TestAnnotateSharded:
    def test_hierarchy_sharded_matches_unsharded_wire_bytes(
            self, server_engine, hier_circuit, full_graph, pairs):
        """The halo-containment contract, end to end: sharding along the
        hierarchy must not change a single canonical record."""
        unsharded = server_engine.annotate(full_graph, pairs=pairs, seed=0)
        sharded = server_engine.annotate_sharded(hier_circuit, pairs=pairs,
                                                 num_shards=3, seed=0)
        assert canonical_records(sharded) == canonical_records(unsharded)
        assert sharded.design == unsharded.design
        assert [tuple(r["pair"]) for r in sharded.records] == list(pairs)

    def test_flat_sharded_matches_unsharded_wire_bytes(
            self, server_engine, flat_circuit, full_graph, pairs):
        unsharded = server_engine.annotate(full_graph, pairs=pairs, seed=0)
        sharded = server_engine.annotate_sharded(flat_circuit, pairs=pairs,
                                                 num_shards=4, seed=0)
        assert canonical_records(sharded) == canonical_records(unsharded)

    def test_fork_pool_matches_serial_shards(self, server_engine, hier_circuit,
                                             pairs):
        serial = server_engine.annotate_sharded(hier_circuit, pairs=pairs,
                                                num_shards=3, max_workers=0,
                                                seed=0)
        forked = server_engine.annotate_sharded(hier_circuit, pairs=pairs,
                                                num_shards=3, max_workers=2,
                                                seed=0)
        assert canonical_records(forked) == canonical_records(serial)

    def test_candidate_mode_draws_owned_pairs_per_shard(self, server_engine,
                                                        hier_circuit):
        plan = plan_shards(hier_circuit, num_shards=3,
                           hops=server_engine.config.data.hops)
        annotation = server_engine.annotate_sharded(hier_circuit,
                                                    num_shards=3,
                                                    max_candidates=5, seed=7)
        assert 0 < len(annotation.records) <= 5 * plan.num_shards
        for record in annotation.records:
            name_a, name_b = record["pair"]
            # Both anchors of a shard-local candidate share one owner.
            assert plan.owner_of(name_a) == plan.owner_of(name_b)

    def test_candidate_mode_is_deterministic(self, server_engine, hier_circuit):
        first = server_engine.annotate_sharded(hier_circuit, num_shards=3,
                                               max_candidates=5, seed=7)
        again = server_engine.annotate_sharded(hier_circuit, num_shards=3,
                                               max_candidates=5, seed=7)
        assert canonical_records(first) == canonical_records(again)

    def test_sharded_keeps_the_hierarchical_circuit(self, server_engine,
                                                    hier_circuit, pairs):
        annotation = server_engine.annotate_sharded(hier_circuit, pairs=pairs,
                                                    num_shards=2, seed=0)
        assert annotation.circuit is hier_circuit

    def test_gravity_partition_localizes_macros_and_keeps_parity(
            self, server_engine):
        """Banked designs take the weight-aware gravity partition: each
        shard's circuit holds only its own bank macros (the memory bound),
        and the wire bytes still match the unsharded reference."""
        banked = hierarchical_sram(banks=6, rows=4, cols=2)
        plan = plan_shards(banked, num_shards=3,
                           hops=server_engine.config.data.hops)
        assert plan.partition == "gravity"
        for shard in plan.shards:
            included_banks = sum(
                1 for inst in shard.source.instances
                if inst.subckt_name == "HSRAM_BANK")
            assert included_banks == 2, (
                f"shard {shard.index} flattens {included_banks} of 6 banks; "
                "the halo should stay local to the owned banks"
            )
        graph = netlist_to_graph(banked.flatten())
        pairs = default_candidate_pairs(graph, max_candidates=48,
                                        rng=np.random.default_rng(11))
        unsharded = server_engine.annotate(graph, pairs=pairs, seed=0)
        sharded = server_engine.annotate_sharded(banked, pairs=pairs,
                                                 num_shards=3, seed=0)
        assert canonical_records(sharded) == canonical_records(unsharded)


# --------------------------------------------------------------------------- #
# Incremental re-annotation
# --------------------------------------------------------------------------- #
@pytest.fixture()
def prev_report(server_engine, flat_circuit, pairs):
    return server_engine.annotate(flat_circuit, pairs=pairs, seed=0)


def _eco_delta(flat_circuit, pairs) -> NetlistDelta:
    """Remove a device on the first candidate pair's net and add a resistor
    there, so at least one annotated pair is genuinely affected."""
    target_net = pairs[0][0]
    (victim,) = [d for d in flat_circuit.devices
                 if target_net in d.terminals.values()][:1]
    return NetlistDelta(
        add_devices=[Resistor("RECO", {"P": target_net, "N": "eco_new"},
                              resistance=1e3)],
        remove_devices=[victim.name],
    )


class TestReannotate:
    def test_matches_full_reannotation_on_the_new_circuit(
            self, server_engine, flat_circuit, pairs, prev_report):
        delta = _eco_delta(flat_circuit, pairs)
        incremental = server_engine.reannotate(prev_report, delta, seed=0)
        full = server_engine.annotate(delta.apply(flat_circuit),
                                      pairs=[r["pair"] for r in
                                             incremental.records], seed=0)
        assert canonical_records(incremental) == canonical_records(full)

    def test_unaffected_records_are_carried_over_verbatim(
            self, server_engine, flat_circuit, pairs, prev_report):
        delta = _eco_delta(flat_circuit, pairs)
        result = server_engine.reannotate(prev_report, delta, seed=0)
        summary = result.incremental
        assert summary["reused"] > 0 and summary["recomputed"] > 0
        by_pair = {tuple(r["pair"]): r for r in prev_report.records}
        reused = [r for r in result.records
                  if r == by_pair.get(tuple(r["pair"]))]
        # Every carried-over record is byte-identical to its predecessor
        # (recomputed ones may *also* coincide, hence >=).
        assert len(reused) >= summary["reused"]
        assert summary["reused"] + summary["recomputed"] + summary["dropped"] \
            == len(prev_report.records)

    def test_empty_delta_reuses_everything(self, server_engine, prev_report):
        result = server_engine.reannotate(prev_report, NetlistDelta(), seed=0)
        assert result.incremental == {
            "reused": len(prev_report.records), "recomputed": 0,
            "dropped": 0, "added": 0}
        assert canonical_records(result) == canonical_records(prev_report)

    def test_extra_pairs_are_appended(self, server_engine, flat_circuit,
                                      pairs, prev_report):
        delta = _eco_delta(flat_circuit, pairs)
        extra = ("eco_new", list(flat_circuit.devices[1].terminals.values())[0])
        result = server_engine.reannotate(prev_report, delta, seed=0,
                                          extra_pairs=[extra])
        assert result.incremental["added"] == 1
        assert tuple(result.records[-1]["pair"]) == extra

    def test_invalidates_the_design_pe_cache_entries(
            self, server_engine, flat_circuit, pairs, prev_report):
        sentinel = (prev_report.design, "sentinel")
        server_engine.cache.put(sentinel, np.zeros(2))
        server_engine.reannotate(prev_report, _eco_delta(flat_circuit, pairs), seed=0)
        assert server_engine.cache.get(sentinel) is None

    def test_requires_the_previous_circuit(self, server_engine, full_graph,
                                           pairs):
        bare = server_engine.annotate(full_graph, pairs=pairs, seed=0)
        assert bare.circuit is None
        with pytest.raises(RuntimeError, match="circuit"):
            server_engine.reannotate(bare, NetlistDelta(), seed=0)

    def test_incremental_summary_roundtrips_through_the_payload(
            self, server_engine, flat_circuit, pairs, prev_report):
        result = server_engine.reannotate(prev_report,
                                          _eco_delta(flat_circuit, pairs), seed=0)
        payload = result.as_dict()
        assert payload["incremental"] == result.incremental
        restored = NetlistAnnotation.from_payload(payload)
        assert restored.incremental == result.incremental
        # Full runs omit the key entirely.
        assert "incremental" not in prev_report.as_dict()


# --------------------------------------------------------------------------- #
# Seed-stream hygiene at the serve level
# --------------------------------------------------------------------------- #
class TestAnnotateManySeedStreams:
    def test_nearby_base_seeds_do_not_share_candidate_streams(
            self, server_engine, full_graph):
        """Regression for additive ``seed + i`` derivation: seed 0's second
        design used to reuse seed 1's first design's RNG stream."""
        designs = [full_graph, full_graph]
        seed0 = server_engine.annotate_many(designs, max_candidates=12, seed=0)
        seed1 = server_engine.annotate_many(designs, max_candidates=12, seed=1)
        assert canonical_records(seed0[1]) != canonical_records(seed1[0])

    def test_seed_offset_matches_the_single_call_streams(
            self, server_engine, full_graph):
        designs = [full_graph] * 3
        whole = server_engine.annotate_many(designs, max_candidates=12, seed=5)
        grouped = (server_engine.annotate_many(designs[:1], max_candidates=12,
                                               seed=5)
                   + server_engine.annotate_many(designs[1:], max_candidates=12,
                                                 seed=5, seed_offset=1))
        assert [canonical_records(a) for a in whole] \
            == [canonical_records(a) for a in grouped]
