"""Tests for the batched annotation engine (repro.core.serve)."""

import json

import numpy as np
import pytest

from repro.core import (
    AnnotationEngine,
    CircuitGPSPipeline,
    NetlistAnnotation,
    PECache,
    build_model,
    default_candidate_pairs,
)
from repro.graph import netlist_to_graph
from repro.netlist import parse_spice_file, ssram, write_spice


@pytest.fixture(scope="module")
def serving_pipeline(tiny_config):
    """An untrained pipeline with link + regression models (weights irrelevant)."""
    link_model = build_model(tiny_config)
    reg_model = build_model(tiny_config)
    return CircuitGPSPipeline.from_models(
        tiny_config, link_model, heads={("edge_regression", "all"): reg_model}
    )


@pytest.fixture(scope="module")
def user_circuit():
    circuit = ssram(rows=4, cols=4)
    circuit.name = "SERVE_TEST"
    return circuit


class TestEngineConstruction:
    def test_requires_pretrained_model(self, tiny_config):
        with pytest.raises(RuntimeError, match="pre-trained"):
            AnnotationEngine(CircuitGPSPipeline(tiny_config))

    def test_requires_matching_head(self, tiny_config):
        pipeline = CircuitGPSPipeline.from_models(tiny_config, build_model(tiny_config))
        with pytest.raises(RuntimeError, match="fine-tuned head"):
            AnnotationEngine(pipeline)

    def test_rejects_bad_batch_size(self, serving_pipeline):
        with pytest.raises(ValueError):
            AnnotationEngine(serving_pipeline, batch_size=0)


class TestCandidateGeneration:
    def test_skips_power_and_ground_nets(self, user_circuit):
        graph = netlist_to_graph(user_circuit.flatten())
        pairs = default_candidate_pairs(graph, max_candidates=50,
                                        rng=np.random.default_rng(0))
        flat_names = {name.lower() for pair in pairs for name in pair}
        assert not flat_names & {"vdd", "vss", "gnd", "0"}

    def test_respects_cap_and_determinism(self, user_circuit):
        graph = netlist_to_graph(user_circuit.flatten())
        pairs_a = default_candidate_pairs(graph, max_candidates=17,
                                          rng=np.random.default_rng(3))
        pairs_b = default_candidate_pairs(graph, max_candidates=17,
                                          rng=np.random.default_rng(3))
        assert len(pairs_a) == 17
        assert pairs_a == pairs_b
        assert all(a != b for a, b in pairs_a)


class TestAnnotate:
    def test_explicit_pairs_records(self, serving_pipeline, user_circuit):
        engine = AnnotationEngine(serving_pipeline, batch_size=8)
        pairs = [("BL0", "BL1"), ("BL0", "BLB0")]
        annotation = engine.annotate(user_circuit, pairs=pairs)
        assert isinstance(annotation, NetlistAnnotation)
        assert annotation.num_candidates == 2
        for record, pair in zip(annotation.records, pairs):
            assert record["pair"] == pair
            assert record["link_type"] == "net-net"
            assert 0.0 <= record["coupling_probability"] <= 1.0
            assert 0.0 <= record["capacitance_normalized"] <= 1.0
            assert record["capacitance_farad"] >= 0.0
            assert record["coupled"] == (record["coupling_probability"] >= 0.5)

    def test_matches_pipeline_predict_couplings(self, serving_pipeline, user_circuit):
        flat = user_circuit.flatten()
        pairs = [("BL0", "BL1"), ("BL1", "BLB1"), ("WL0", "WL1")]
        # Same batch size on both paths: chunking feeds the extraction RNG, so
        # identical chunking guarantees identical subgraphs.
        engine = AnnotationEngine(serving_pipeline, batch_size=16)
        annotation = engine.annotate(flat, pairs=pairs, seed=0)
        records = serving_pipeline.predict_couplings(flat, pairs, batch_size=16)
        for engine_record, pipeline_record in zip(annotation.records, records):
            assert engine_record["coupling_probability"] == pytest.approx(
                pipeline_record["coupling_probability"])
            assert engine_record["capacitance_farad"] == pytest.approx(
                pipeline_record["capacitance_farad"])

    def test_unknown_pair_raises(self, serving_pipeline, user_circuit):
        engine = AnnotationEngine(serving_pipeline)
        with pytest.raises(KeyError):
            engine.annotate(user_circuit, pairs=[("nope", "also_nope")])

    def test_annotate_from_file(self, serving_pipeline, user_circuit, tmp_path):
        path = tmp_path / "macro.sp"
        path.write_text(write_spice(user_circuit))
        engine = AnnotationEngine(serving_pipeline, threshold=0.0)
        annotation = engine.annotate(path, max_candidates=10)
        assert annotation.num_candidates == 10
        assert annotation.couplings == annotation.records  # threshold 0 keeps all
        text = annotation.annotated_spice()
        assert "CPRED0" in text
        assert text.rstrip().endswith(".end")
        # The annotated netlist must still be parseable SPICE.
        reparsed = parse_spice_file(path)  # original parses
        assert reparsed.nets
        annotated_path = tmp_path / "macro.annotated.sp"
        annotated_path.write_text(text)
        assert parse_spice_file(annotated_path).nets

    def test_bare_graph_has_no_netlist_to_annotate(self, serving_pipeline, user_circuit):
        graph = netlist_to_graph(user_circuit.flatten())
        engine = AnnotationEngine(serving_pipeline)
        annotation = engine.annotate(graph, pairs=[("BL0", "BL1")])
        with pytest.raises(RuntimeError, match="bare graph"):
            annotation.annotated_spice()

    def test_json_report_roundtrip(self, serving_pipeline, user_circuit, tmp_path):
        engine = AnnotationEngine(serving_pipeline)
        annotation = engine.annotate(user_circuit, pairs=[("BL0", "BL1")])
        path = annotation.write_json(tmp_path / "report.json")
        payload = json.loads(path.read_text())
        assert payload["design"] == "SERVE_TEST"
        assert payload["num_candidates"] == 1
        assert payload["records"][0]["pair"] == ["BL0", "BL1"]

    def test_repeat_annotation_shares_cache(self, serving_pipeline, user_circuit):
        engine = AnnotationEngine(serving_pipeline, cache=PECache())
        pairs = [("BL0", "BL1"), ("BL1", "BLB1")]
        first = engine.annotate(user_circuit, pairs=pairs, seed=7)
        misses = engine.cache.misses
        second = engine.annotate(user_circuit, pairs=pairs, seed=7)
        # The identical workload must be served from the shared PE cache.
        assert engine.cache.misses == misses
        assert engine.cache.hits >= len(pairs)
        for a, b in zip(first.records, second.records):
            assert a == b

    def test_annotate_many_returns_one_report_per_netlist(self, serving_pipeline,
                                                          user_circuit):
        engine = AnnotationEngine(serving_pipeline)
        pairs = [("BL0", "BL1")]
        reports = engine.annotate_many([user_circuit, user_circuit],
                                       pairs=[pairs, pairs], seed=3)
        assert [r.num_candidates for r in reports] == [1, 1]

    def test_annotate_many_misaligned_pairs_raises(self, serving_pipeline, user_circuit):
        engine = AnnotationEngine(serving_pipeline)
        with pytest.raises(ValueError, match="align"):
            engine.annotate_many([user_circuit], pairs=[[("BL0", "BL1")], [("x", "y")]])


class TestAnnotateManyPartialFailure:
    """on_error="collect": a failing design never discards its neighbours.

    The same contract backs both the CLI path and the annotation service's
    multi-design requests, so the report shapes are asserted here once.
    """

    def test_collect_reports_error_entries_in_place(self, serving_pipeline,
                                                    user_circuit, tmp_path):
        engine = AnnotationEngine(serving_pipeline)
        bad = tmp_path / "bad.sp"
        bad.write_text("C0 other_a other_b 1f\n.end\n")  # lacks BL0/BL1
        pairs = [("BL0", "BL1")]
        reports = engine.annotate_many(
            [user_circuit, str(bad), user_circuit],
            pairs=[pairs, pairs, pairs], seed=3, on_error="collect")
        assert [r.ok for r in reports] == [True, False, True]
        failure = reports[1]
        assert failure.design == "bad"
        assert failure.error_type == "KeyError"
        assert "not found" in failure.message
        assert failure.as_dict()["status"] == "error"
        assert failure.as_dict()["error"]["type"] == "KeyError"
        # Successful neighbours are unaffected by the failure between them.
        lone = engine.annotate(user_circuit, pairs=pairs, seed=3)
        assert reports[0].records == lone.records
        ok_dict = reports[0].as_dict()
        assert ok_dict["status"] == "ok"

    def test_collect_is_worker_count_invariant(self, serving_pipeline,
                                               user_circuit, tmp_path):
        engine_serial = AnnotationEngine(serving_pipeline, workers=0)
        engine_forked = AnnotationEngine(serving_pipeline, workers=2)
        bad = tmp_path / "broken.sp"
        bad.write_text("C0 nope_a nope_b 1f\n.end\n")
        netlists = [user_circuit, str(bad), user_circuit, user_circuit]
        pairs = [[("BL0", "BL1")]] * len(netlists)
        serial = engine_serial.annotate_many(netlists, pairs=pairs, seed=5,
                                             on_error="collect")
        forked = engine_forked.annotate_many(netlists, pairs=pairs, seed=5,
                                             on_error="collect")
        assert [r.as_dict() if not r.ok else r.records for r in serial] \
            == [r.as_dict() if not r.ok else r.records for r in forked]

    def test_default_on_error_still_raises(self, serving_pipeline, tmp_path):
        engine = AnnotationEngine(serving_pipeline)
        bad = tmp_path / "still_bad.sp"
        bad.write_text("C0 a b 1f\n.end\n")
        with pytest.raises(KeyError, match="not found"):
            engine.annotate_many([str(bad)], pairs=[[("BL0", "BL1")]])

    def test_rejects_unknown_on_error(self, serving_pipeline, user_circuit):
        engine = AnnotationEngine(serving_pipeline)
        with pytest.raises(ValueError, match="on_error"):
            engine.annotate_many([user_circuit], pairs=[[("BL0", "BL1")]],
                                 on_error="ignore")


@pytest.fixture(scope="module")
def trained_link_pipeline(tiny_config, small_design):
    """A pipeline whose link model was actually pre-trained (tiny budget)."""
    from repro.core import pretrain_link_model

    result = pretrain_link_model([small_design], tiny_config)
    reg_model = build_model(tiny_config)
    return CircuitGPSPipeline.from_models(
        tiny_config, result.model, heads={("edge_regression", "all"): reg_model}
    )


class TestFloat32Serving:
    """The reduced-precision inference mode of the engine (PR 6)."""

    def test_rejects_unsupported_precision(self, serving_pipeline):
        with pytest.raises(ValueError, match="float64"):
            AnnotationEngine(serving_pipeline, precision="int8")

    def test_float32_engine_does_not_mutate_pipeline(self, serving_pipeline):
        engine = AnnotationEngine(serving_pipeline, precision="float32")
        for param in engine.link_model.parameters():
            assert param.data.dtype == np.float32
        for param in serving_pipeline.pretrain_result.model.parameters():
            assert param.data.dtype == np.float64
        for result in serving_pipeline.finetune_results.values():
            for param in result.model.parameters():
                assert param.data.dtype == np.float64

    def test_float32_probabilities_track_float64(self, trained_link_pipeline,
                                                 small_design):
        """Engine-level drift: float32 probabilities stay within 1e-4."""
        from repro.graph import generate_negative_links

        graph = small_design.graph
        positives = list(graph.links)[:40]
        negatives = generate_negative_links(graph, ratio=1.0, rng=0)[:40]
        pairs = [(graph.node_names[link.source], graph.node_names[link.target])
                 for link in positives + negatives]

        def probabilities(precision: str) -> np.ndarray:
            engine = AnnotationEngine(trained_link_pipeline, cache=PECache(),
                                      precision=precision)
            annotation = engine.annotate(graph, pairs=pairs, seed=0)
            return np.array([r["coupling_probability"] for r in annotation.records])

        np.testing.assert_allclose(probabilities("float32"),
                                   probabilities("float64"), atol=1e-4)

    def test_float32_auc_drift_within_1e4_on_bundled_designs(self):
        """Acceptance gate: float32 inference moves link AUC by <= 1e-4.

        Uses a model that is genuinely discriminative (AUC ~0.83-0.90
        zero-shot) — the paper's pretrain on the bundled training designs at
        reduced scale — because AUC drift on a near-constant predictor only
        measures how float32 noise breaks exact ties, not serving quality.
        """
        import copy

        from repro.core import (
            ExperimentConfig,
            evaluate_zero_shot_link,
            load_design_suite,
            pretrain_link_model,
        )
        from repro.core.datasets import TEST_DESIGNS, TRAIN_DESIGNS
        from repro.nn import use_dtype
        from repro.utils import seed_all

        config = (
            ExperimentConfig.fast()
            .with_model(dim=24, num_layers=2, attention="transformer", dropout=0.05)
            .with_train(epochs=2, batch_size=32, lr=3e-3)
            .with_data(scale=0.3, max_links_per_design=60, max_nodes_per_hop=12)
        )
        suite = load_design_suite(scale=config.data.scale, seed=config.data.seed)
        seed_all(config.train.seed)
        result = pretrain_link_model([suite[name] for name in TRAIN_DESIGNS], config)
        model32 = copy.deepcopy(result.model).cast(np.float32)
        for name in TEST_DESIGNS:
            metrics64 = evaluate_zero_shot_link(result.model, suite[name], config)
            with use_dtype(np.float32):
                metrics32 = evaluate_zero_shot_link(model32, suite[name], config)
            assert metrics64["auc"] >= 0.8, (
                f"reference model is not discriminative on {name}: "
                f"AUC {metrics64['auc']:.3f}"
            )
            drift = abs(metrics64["auc"] - metrics32["auc"])
            assert drift <= 1e-4, (
                f"float32 inference moved AUC on {name} by {drift:.2e}"
            )

    def test_float32_records_match_float64_structure(self, serving_pipeline,
                                                     user_circuit):
        engine64 = AnnotationEngine(serving_pipeline, cache=PECache())
        engine32 = AnnotationEngine(serving_pipeline, cache=PECache(),
                                    precision="float32")
        a64 = engine64.annotate(user_circuit, max_candidates=24, seed=0)
        a32 = engine32.annotate(user_circuit, max_candidates=24, seed=0)
        assert [r["pair"] for r in a32.records] == [r["pair"] for r in a64.records]
        caps64 = [r["capacitance_normalized"] for r in a64.records]
        caps32 = [r["capacitance_normalized"] for r in a32.records]
        np.testing.assert_allclose(caps32, caps64, atol=1e-4)
