"""Tests for the batched annotation engine (repro.core.serve)."""

import json

import numpy as np
import pytest

from repro.core import (
    AnnotationEngine,
    CircuitGPSPipeline,
    NetlistAnnotation,
    PECache,
    build_model,
    default_candidate_pairs,
)
from repro.graph import netlist_to_graph
from repro.netlist import parse_spice_file, ssram, write_spice


@pytest.fixture(scope="module")
def serving_pipeline(tiny_config):
    """An untrained pipeline with link + regression models (weights irrelevant)."""
    link_model = build_model(tiny_config)
    reg_model = build_model(tiny_config)
    return CircuitGPSPipeline.from_models(
        tiny_config, link_model, heads={("edge_regression", "all"): reg_model}
    )


@pytest.fixture(scope="module")
def user_circuit():
    circuit = ssram(rows=4, cols=4)
    circuit.name = "SERVE_TEST"
    return circuit


class TestEngineConstruction:
    def test_requires_pretrained_model(self, tiny_config):
        with pytest.raises(RuntimeError, match="pre-trained"):
            AnnotationEngine(CircuitGPSPipeline(tiny_config))

    def test_requires_matching_head(self, tiny_config):
        pipeline = CircuitGPSPipeline.from_models(tiny_config, build_model(tiny_config))
        with pytest.raises(RuntimeError, match="fine-tuned head"):
            AnnotationEngine(pipeline)

    def test_rejects_bad_batch_size(self, serving_pipeline):
        with pytest.raises(ValueError):
            AnnotationEngine(serving_pipeline, batch_size=0)


class TestCandidateGeneration:
    def test_skips_power_and_ground_nets(self, user_circuit):
        graph = netlist_to_graph(user_circuit.flatten())
        pairs = default_candidate_pairs(graph, max_candidates=50,
                                        rng=np.random.default_rng(0))
        flat_names = {name.lower() for pair in pairs for name in pair}
        assert not flat_names & {"vdd", "vss", "gnd", "0"}

    def test_respects_cap_and_determinism(self, user_circuit):
        graph = netlist_to_graph(user_circuit.flatten())
        pairs_a = default_candidate_pairs(graph, max_candidates=17,
                                          rng=np.random.default_rng(3))
        pairs_b = default_candidate_pairs(graph, max_candidates=17,
                                          rng=np.random.default_rng(3))
        assert len(pairs_a) == 17
        assert pairs_a == pairs_b
        assert all(a != b for a, b in pairs_a)


class TestAnnotate:
    def test_explicit_pairs_records(self, serving_pipeline, user_circuit):
        engine = AnnotationEngine(serving_pipeline, batch_size=8)
        pairs = [("BL0", "BL1"), ("BL0", "BLB0")]
        annotation = engine.annotate(user_circuit, pairs=pairs)
        assert isinstance(annotation, NetlistAnnotation)
        assert annotation.num_candidates == 2
        for record, pair in zip(annotation.records, pairs):
            assert record["pair"] == pair
            assert record["link_type"] == "net-net"
            assert 0.0 <= record["coupling_probability"] <= 1.0
            assert 0.0 <= record["capacitance_normalized"] <= 1.0
            assert record["capacitance_farad"] >= 0.0
            assert record["coupled"] == (record["coupling_probability"] >= 0.5)

    def test_matches_pipeline_predict_couplings(self, serving_pipeline, user_circuit):
        flat = user_circuit.flatten()
        pairs = [("BL0", "BL1"), ("BL1", "BLB1"), ("WL0", "WL1")]
        # Same batch size on both paths: chunking feeds the extraction RNG, so
        # identical chunking guarantees identical subgraphs.
        engine = AnnotationEngine(serving_pipeline, batch_size=16)
        annotation = engine.annotate(flat, pairs=pairs, seed=0)
        records = serving_pipeline.predict_couplings(flat, pairs, batch_size=16)
        for engine_record, pipeline_record in zip(annotation.records, records):
            assert engine_record["coupling_probability"] == pytest.approx(
                pipeline_record["coupling_probability"])
            assert engine_record["capacitance_farad"] == pytest.approx(
                pipeline_record["capacitance_farad"])

    def test_unknown_pair_raises(self, serving_pipeline, user_circuit):
        engine = AnnotationEngine(serving_pipeline)
        with pytest.raises(KeyError):
            engine.annotate(user_circuit, pairs=[("nope", "also_nope")])

    def test_annotate_from_file(self, serving_pipeline, user_circuit, tmp_path):
        path = tmp_path / "macro.sp"
        path.write_text(write_spice(user_circuit))
        engine = AnnotationEngine(serving_pipeline, threshold=0.0)
        annotation = engine.annotate(path, max_candidates=10)
        assert annotation.num_candidates == 10
        assert annotation.couplings == annotation.records  # threshold 0 keeps all
        text = annotation.annotated_spice()
        assert "CPRED0" in text
        assert text.rstrip().endswith(".end")
        # The annotated netlist must still be parseable SPICE.
        reparsed = parse_spice_file(path)  # original parses
        assert reparsed.nets
        annotated_path = tmp_path / "macro.annotated.sp"
        annotated_path.write_text(text)
        assert parse_spice_file(annotated_path).nets

    def test_bare_graph_has_no_netlist_to_annotate(self, serving_pipeline, user_circuit):
        graph = netlist_to_graph(user_circuit.flatten())
        engine = AnnotationEngine(serving_pipeline)
        annotation = engine.annotate(graph, pairs=[("BL0", "BL1")])
        with pytest.raises(RuntimeError, match="bare graph"):
            annotation.annotated_spice()

    def test_json_report_roundtrip(self, serving_pipeline, user_circuit, tmp_path):
        engine = AnnotationEngine(serving_pipeline)
        annotation = engine.annotate(user_circuit, pairs=[("BL0", "BL1")])
        path = annotation.write_json(tmp_path / "report.json")
        payload = json.loads(path.read_text())
        assert payload["design"] == "SERVE_TEST"
        assert payload["num_candidates"] == 1
        assert payload["records"][0]["pair"] == ["BL0", "BL1"]

    def test_repeat_annotation_shares_cache(self, serving_pipeline, user_circuit):
        engine = AnnotationEngine(serving_pipeline, cache=PECache())
        pairs = [("BL0", "BL1"), ("BL1", "BLB1")]
        first = engine.annotate(user_circuit, pairs=pairs, seed=7)
        misses = engine.cache.misses
        second = engine.annotate(user_circuit, pairs=pairs, seed=7)
        # The identical workload must be served from the shared PE cache.
        assert engine.cache.misses == misses
        assert engine.cache.hits >= len(pairs)
        for a, b in zip(first.records, second.records):
            assert a == b

    def test_annotate_many_returns_one_report_per_netlist(self, serving_pipeline,
                                                          user_circuit):
        engine = AnnotationEngine(serving_pipeline)
        pairs = [("BL0", "BL1")]
        reports = engine.annotate_many([user_circuit, user_circuit],
                                       pairs=[pairs, pairs], seed=3)
        assert [r.num_candidates for r in reports] == [1, 1]

    def test_annotate_many_misaligned_pairs_raises(self, serving_pipeline, user_circuit):
        engine = AnnotationEngine(serving_pipeline)
        with pytest.raises(ValueError, match="align"):
            engine.annotate_many([user_circuit], pairs=[[("BL0", "BL1")], [("x", "y")]])
