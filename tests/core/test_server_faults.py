"""Fault injection against the annotation daemon.

Every scenario asserts two things: the *blast radius* (a fault stays
contained to the request or sample that caused it) and the *accounting*
(the matching ``/metrics`` error counter increments).  Scenarios:

* malformed JSON bodies and oversized payloads → 400 / 413,
* a mid-batch engine exception (one poisoned design coalesced into a shared
  batch) → only the poisoned request fails; its batch-mates from other
  requests are answered byte-identically to a fault-free run,
* a client disconnecting mid-stream → the daemon stays healthy,
* a flood against a tiny queue bound → backpressure, not unbounded memory.
"""

from __future__ import annotations

import concurrent.futures
import http.client
import json
import socket
import time

import numpy as np
import pytest

from repro.core.serve import annotation_payload, default_candidate_pairs
from repro.core.server import (
    ServeClient,
    ServeError,
    ServerConfig,
    ThreadedServer,
    dumps_canonical,
)
from repro.graph import netlist_to_graph
from repro.netlist import parse_spice


@pytest.fixture()
def faulty_server(server_engine):
    """A dedicated daemon per test (fault state must not leak)."""
    config = ServerConfig(port=0, batch_window_ms=40.0, max_batch=64,
                          max_body_bytes=64 * 1024)
    with ThreadedServer(server_engine, config) as threaded:
        yield threaded


def raw_post(server, body: bytes, path: str = "/annotate"):
    """POST arbitrary bytes, bypassing the JSON client."""
    connection = http.client.HTTPConnection(server.server.host,
                                            server.server.port, timeout=10)
    connection.request("POST", path, body=body,
                       headers={"Content-Type": "application/json"})
    response = connection.getresponse()
    payload = json.loads(response.read())
    connection.close()
    return response.status, payload


class TestProtocolFaults:
    def test_malformed_json_is_a_400(self, faulty_server):
        status, payload = raw_post(faulty_server, b"{not json at all")
        assert status == 400
        assert payload["error"]["type"] == "bad_json"
        metrics = ServeClient(faulty_server.url).metrics()
        assert metrics["errors_total"]["bad_json"] == 1
        assert metrics["responses_error_total"] == 1

    def test_wrong_shapes_are_400s(self, faulty_server):
        for body in (b"[1,2,3]",                      # not an object
                     b"{}",                           # neither spice nor designs
                     b'{"designs": []}',              # empty designs
                     b'{"designs": [{"name": "x"}]}',  # missing spice
                     b'{"spice": ".end", "pairs": [["a"]]}',  # 1-element pair
                     b'{"spice": ".end", "seed": "NaNsense"}'):
            status, payload = raw_post(faulty_server, body)
            assert status == 400, body
            assert payload["error"]["type"] == "bad_request", body
        metrics = ServeClient(faulty_server.url).metrics()
        assert metrics["errors_total"]["bad_request"] == 6

    def test_oversized_payload_is_a_413(self, faulty_server, server_spice):
        padding = " ".join(["*pad"] * 40000)  # > the 64 KiB test limit
        status, payload = raw_post(
            faulty_server,
            json.dumps({"spice": server_spice + "\n" + padding}).encode())
        assert status == 413
        assert payload["error"]["type"] == "payload_too_large"
        metrics = ServeClient(faulty_server.url).metrics()
        assert metrics["errors_total"]["payload_too_large"] == 1


class TestMidBatchEngineFault:
    def test_poisoned_design_fails_alone(self, faulty_server, server_engine,
                                         server_spice, monkeypatch):
        """One poisoned sample in a shared batch must not fail batch-mates."""
        graph = netlist_to_graph(parse_spice(server_spice, name="GOOD").flatten())
        pairs = default_candidate_pairs(graph, max_candidates=8,
                                        rng=np.random.default_rng(7))
        annotation = server_engine.annotate(graph, pairs=pairs, seed=1)
        expected = dumps_canonical(annotation_payload(
            annotation.design, annotation.records, annotation.threshold))

        original = server_engine.predict_samples

        def poisoned(samples):
            if any(sample.extras.get("design") == "POISON"
                   for sample in samples):
                raise RuntimeError("injected mid-batch failure")
            return original(samples)

        monkeypatch.setattr(server_engine, "predict_samples", poisoned)
        client = ServeClient(faulty_server.url)
        good_request = {"spice": server_spice, "name": "GOOD",
                        "pairs": [list(pair) for pair in pairs], "seed": 1}
        poison_request = {"spice": server_spice, "name": "POISON",
                          "pairs": [list(pair) for pair in pairs], "seed": 1}
        # The 40 ms window guarantees both requests' links share batches.
        with concurrent.futures.ThreadPoolExecutor(max_workers=2) as pool:
            good_future = pool.submit(client.annotate_raw, good_request)
            poison_future = pool.submit(client.annotate, **{
                "spice": poison_request["spice"],
                "name": "POISON", "pairs": pairs, "seed": 1})
            good_raw = good_future.result(timeout=30)
            poison_report = poison_future.result(timeout=30)

        assert good_raw.strip() == expected  # batch-mate unaffected, bit-for-bit
        assert poison_report["status"] == "error"
        assert poison_report["design"] == "POISON"
        assert "injected mid-batch failure" in poison_report["error"]["message"]
        metrics = client.metrics()
        assert metrics["batch_retries_total"] >= 1
        assert metrics["errors_total"]["batch_item_error"] >= 1
        assert metrics["errors_total"]["design_error"] >= 1
        # The shared engine really was patched back in business afterwards.
        monkeypatch.undo()
        assert client.annotate_raw(good_request).strip() == expected


class TestClientDisconnect:
    def test_disconnect_mid_stream_leaves_daemon_healthy(self, server_engine,
                                                         server_spice):
        # Dedicated server: the multi-design body is larger than the
        # faulty_server fixture's tiny 64 KiB body cap.
        config = ServerConfig(port=0, batch_window_ms=40.0)
        with ThreadedServer(server_engine, config) as threaded:
            self._disconnect_scenario(threaded, server_spice)

    @staticmethod
    def _disconnect_scenario(threaded, server_spice):
        body = json.dumps({
            "designs": [{"spice": server_spice, "name": f"D{i}",
                         "max_candidates": 12} for i in range(6)],
            "stream": True,
        }).encode()
        sock = socket.create_connection(
            (threaded.server.host, threaded.server.port), timeout=10)
        sock.sendall(b"POST /annotate HTTP/1.1\r\n"
                     b"Content-Type: application/json\r\n"
                     + f"Content-Length: {len(body)}\r\n\r\n".encode() + body)
        first = sock.recv(64)  # headers started streaming; the request is live
        assert first.startswith(b"HTTP/1.1 200")
        # Abort hard: RST instead of FIN so pending writes fail server-side.
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                        b"\x01\x00\x00\x00\x00\x00\x00\x00")
        sock.close()

        client = ServeClient(threaded.url)
        deadline = time.monotonic() + 5.0
        disconnected = False
        while time.monotonic() < deadline:
            metrics = client.metrics()  # the daemon must keep answering
            if metrics["errors_total"].get("client_disconnect", 0) >= 1:
                disconnected = True
                break
            time.sleep(0.05)
        assert disconnected, "client_disconnect error counter never incremented"
        # And annotation still works end-to-end afterwards.
        report = client.annotate(server_spice, name="AFTER", max_candidates=3)
        assert report["status"] == "ok"


class TestBackpressure:
    def test_bounded_queue_under_flood(self, server_engine, server_spice):
        """A flood fills the queue to its bound, never past it."""
        config = ServerConfig(port=0, batch_window_ms=5.0, max_batch=8,
                              max_queue=8)
        with ThreadedServer(server_engine, config) as threaded:
            client = ServeClient(threaded.url, timeout=60.0)
            request = {"spice": server_spice, "name": "FLOOD", "seed": 0,
                       "max_candidates": 24}
            with concurrent.futures.ThreadPoolExecutor(max_workers=6) as pool:
                raws = list(pool.map(
                    client.annotate_raw, [dict(request) for _ in range(6)]))
            metrics = client.metrics()
        assert len(set(raws)) == 1  # all identical, all complete
        assert json.loads(raws[0])["status"] == "ok"
        assert metrics["max_queue_depth"] <= 8
        assert metrics["batched_items_total"] >= 6 * 24
