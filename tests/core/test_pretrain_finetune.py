"""End-to-end tests for pre-training and the three fine-tuning modes."""

import numpy as np
import pytest

from repro.core import (
    FINETUNE_MODES,
    evaluate_regression,
    evaluate_zero_shot_link,
    finetune_regression,
    pretrain_link_model,
)
from repro.core.pretrain import build_model


@pytest.fixture(scope="module")
def pretrained(small_design, tiny_config):
    return pretrain_link_model([small_design], tiny_config, val_fraction=0.15)


class TestPretrain:
    def test_result_contains_model_and_history(self, pretrained, tiny_config):
        assert pretrained.model.pe_kind == tiny_config.model.pe_kind
        assert len(pretrained.history.history) == tiny_config.train.epochs
        assert pretrained.train_samples and pretrained.val_samples

    def test_validation_metrics_above_chance(self, pretrained):
        metrics = pretrained.val_metrics
        assert metrics["accuracy"] > 0.6
        assert metrics["auc"] > 0.6

    def test_zero_shot_on_unseen_design(self, pretrained, small_test_design, tiny_config):
        metrics = evaluate_zero_shot_link(pretrained, small_test_design, tiny_config)
        assert set(metrics) >= {"accuracy", "f1", "auc"}
        assert metrics["auc"] > 0.5  # transfers better than random

    def test_pe_override(self, small_design, tiny_config):
        result = pretrain_link_model([small_design], tiny_config.with_train(epochs=1),
                                     pe_kind="drnl")
        assert result.model.pe_kind == "drnl"


class TestFinetune:
    def test_all_modes_run(self, pretrained, small_design, tiny_config):
        for mode in FINETUNE_MODES:
            result = finetune_regression([small_design],
                                         pretrained=None if mode == "scratch" else pretrained.model,
                                         mode=mode, config=tiny_config, epochs=2)
            assert result.mode == mode
            assert result.train_samples

    def test_invalid_mode_raises(self, small_design, tiny_config):
        with pytest.raises(ValueError):
            finetune_regression([small_design], mode="partial", config=tiny_config)

    def test_head_and_all_require_pretrained(self, small_design, tiny_config):
        with pytest.raises(ValueError):
            finetune_regression([small_design], pretrained=None, mode="all", config=tiny_config)

    def test_head_mode_freezes_backbone(self, pretrained, small_design, tiny_config):
        result = finetune_regression([small_design], pretrained=pretrained.model, mode="head",
                                     config=tiny_config, epochs=2)
        # Learnable backbone parameters must be untouched; BatchNorm running
        # statistics (buffers) are allowed to adapt to the regression data.
        pretrained_params = dict(pretrained.model.named_parameters())
        finetuned_params = dict(result.model.named_parameters())
        for name, param in pretrained_params.items():
            if name.startswith(("node_encoder", "edge_encoder", "pe_encoder", "layers")):
                np.testing.assert_allclose(finetuned_params[name].data, param.data, err_msg=name)

    def test_all_mode_changes_backbone(self, pretrained, small_design, tiny_config):
        result = finetune_regression([small_design], pretrained=pretrained.model, mode="all",
                                     config=tiny_config, epochs=2)
        pretrained_state = pretrained.model.state_dict()
        finetuned_state = result.model.state_dict()
        changed = any(
            not np.allclose(finetuned_state[name], value)
            for name, value in pretrained_state.items()
            if name.startswith("layers")
        )
        assert changed

    def test_finetuning_fits_training_distribution(self, pretrained, small_design, tiny_config):
        result = finetune_regression([small_design], pretrained=pretrained.model, mode="all",
                                     config=tiny_config, epochs=10)
        metrics = result.trainer.evaluate(result.train_samples)
        assert metrics["mae"] < 0.3

    def test_node_regression_task(self, small_design, tiny_config):
        result = finetune_regression([small_design], mode="scratch", task="node_regression",
                                     config=tiny_config, epochs=2)
        assert result.task == "node_regression"
        metrics = evaluate_regression(result, small_design, task="node_regression",
                                      config=tiny_config)
        assert np.isfinite(metrics["mae"])

    def test_evaluate_regression_on_unseen_design(self, pretrained, small_design,
                                                  small_test_design, tiny_config):
        result = finetune_regression([small_design], pretrained=pretrained.model, mode="all",
                                     config=tiny_config, epochs=3)
        metrics = evaluate_regression(result, small_test_design, config=tiny_config)
        assert metrics["mae"] < 0.5
        assert metrics["num_samples"] > 0

    def test_regression_task_validation(self, small_design, tiny_config):
        with pytest.raises(ValueError):
            finetune_regression([small_design], mode="scratch", task="link", config=tiny_config)
