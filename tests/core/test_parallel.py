"""Determinism and correctness tests for the parallel execution layer.

The contract of ``repro.core.parallel`` is that worker processes are purely a
wall-clock optimisation: for a fixed seed, ``num_workers in {0, 2, 4}`` must
produce byte-identical samples, byte-identical training metrics/weights and
byte-identical annotation JSON.  These tests pin that contract, plus the
pool mechanics (ordering, error propagation, serial fallbacks) and the
picklability that makes datasets shippable to workers at all.
"""

from __future__ import annotations

import json
import os
import pickle

import numpy as np
import pytest

from repro.core import (
    CircuitGPSPipeline,
    ExperimentConfig,
    build_model,
    fork_available,
    parallel_map,
    resolve_workers,
)
from repro.core.data import DataLoader, PECache, SubgraphDataset
from repro.core.parallel import default_worker_count, map_dataset_chunks, parallel_imap
from repro.core.serve import AnnotationEngine, default_candidate_pairs
from repro.core.trainer import Trainer
from repro.graph import netlist_to_graph
from repro.netlist import ssram
from repro.utils import seed_all

WORKER_COUNTS = (0, 2, 4)


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


def _pid_of(_):
    return os.getpid()


class TestParallelMap:
    def test_matches_serial_in_order(self):
        items = list(range(23))
        assert parallel_map(_square, items, workers=3) == [x * x for x in items]

    def test_serial_fallbacks(self):
        assert parallel_map(_square, [5], workers=4) == [25]
        assert parallel_map(_square, [], workers=4) == []
        assert parallel_map(_square, [2, 3], workers=0) == [4, 9]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(_boom, [1, 2, 3], workers=2)

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_work_actually_leaves_the_parent(self):
        pids = set(parallel_map(_pid_of, list(range(8)), workers=2))
        assert os.getpid() not in pids

    def test_unpicklable_callable_is_fine(self):
        # Closures never cross the process boundary (fork inheritance).
        offset = 10
        results = parallel_map(lambda x: x + offset, [1, 2, 3, 4], workers=2)
        assert results == [11, 12, 13, 14]

    def test_resolve_workers_policy(self):
        assert resolve_workers(None, 10) == 0
        assert resolve_workers(0, 10) == 0
        assert resolve_workers(-2, 10) == 0
        assert resolve_workers(4, 1) == 0
        assert resolve_workers(8, 3) in (0, 3)  # 0 only if fork is unavailable
        assert default_worker_count() >= 1

    def test_nested_calls_degrade_to_serial(self):
        # A worker asking for its own pool must not fork pools-inside-pools.
        results = parallel_map(_nested_level, [1, 2], workers=2)
        assert results == [[2, 4], [4, 8]]

    def test_imap_streams_in_order(self):
        stream = parallel_imap(_square, range(9), workers=2)
        assert next(iter(stream)) == 0  # first result before full consumption
        assert list(stream) == [x * x for x in range(1, 9)]
        assert list(parallel_imap(_square, [3, 4], workers=0)) == [9, 16]


def _nested_level(x):
    return parallel_map(_square_times(x), [2, 4], workers=2)


def _square_times(x):
    return lambda y: x * y


# --------------------------------------------------------------------------- #
# Dataset / loader determinism
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def lazy_workload():
    """A lazy link dataset over a small real design graph."""
    circuit = ssram(rows=4, cols=4).flatten()
    circuit.name = "PAR_TEST"
    graph = netlist_to_graph(circuit)
    pairs = default_candidate_pairs(graph, max_candidates=48,
                                    rng=np.random.default_rng(0))
    links = AnnotationEngine.links_for_pairs(graph, pairs)
    return graph, links


def _batch_bytes(batch) -> tuple:
    return (batch.node_types.tobytes(), batch.edge_index.tobytes(),
            batch.edge_types.tobytes(), batch.batch.tobytes(),
            batch.anchors.tobytes(), batch.pe.tobytes(),
            batch.node_stats.tobytes(), batch.labels.tobytes(),
            batch.targets.tobytes(), batch.link_types.tobytes())


def _epoch_bytes(graph, links, num_workers: int, *, shuffle=True, epochs=1) -> list:
    dataset = SubgraphDataset.from_links(graph, links, hops=1, pe_kind="dspd",
                                         seed=3, cache=PECache())
    loader = DataLoader(dataset, batch_size=8, shuffle=shuffle,
                        rng=np.random.default_rng(11), num_workers=num_workers)
    return [_batch_bytes(b) for _ in range(epochs) for b in loader]


class TestLoaderDeterminism:
    def test_same_seed_same_batches_any_worker_count(self, lazy_workload):
        graph, links = lazy_workload
        baseline = _epoch_bytes(graph, links, 0)
        for workers in WORKER_COUNTS[1:]:
            assert _epoch_bytes(graph, links, workers) == baseline, (
                f"num_workers={workers} produced different batches than serial"
            )

    def test_multi_epoch_streams_identical(self, lazy_workload):
        graph, links = lazy_workload
        assert _epoch_bytes(graph, links, 2, epochs=2) == _epoch_bytes(graph, links, 0, epochs=2)

    def test_unshuffled_loader_identical(self, lazy_workload):
        graph, links = lazy_workload
        assert _epoch_bytes(graph, links, 2, shuffle=False) == \
            _epoch_bytes(graph, links, 0, shuffle=False)

    def test_memoizing_dataset_multi_epoch_parity_with_subsampling(self, lazy_workload):
        """Workers must not defeat memoization: epoch 2 reuses epoch-1 samples.

        With hub subsampling active, re-extraction draws fresh RNG — so if
        the parallel path failed to write worker samples back into the memo,
        epoch 2 would diverge from the serial run.
        """
        graph, links = lazy_workload

        def run(num_workers: int) -> list:
            dataset = SubgraphDataset.from_links(
                graph, links, hops=1, pe_kind="dspd", seed=3, cache=PECache(),
                max_nodes_per_hop=4, memoize=True,
            )
            loader = DataLoader(dataset, batch_size=8, shuffle=True,
                                rng=np.random.default_rng(2), num_workers=num_workers)
            return [_batch_bytes(b) for _ in range(2) for b in loader]

        assert run(2) == run(0)

    def test_materialized_dataset_ignores_workers(self, lazy_workload):
        graph, links = lazy_workload
        dataset = SubgraphDataset.from_links(graph, links, hops=1, pe_kind="dspd",
                                             seed=3).materialize()
        loader = DataLoader(dataset, batch_size=8, shuffle=False, num_workers=4)
        assert loader._parallel_workers(len(loader)) == 0
        assert sum(b.num_graphs for b in loader) == len(links)

    def test_map_dataset_chunks_matches_getitem(self, lazy_workload):
        graph, links = lazy_workload
        dataset = SubgraphDataset.from_links(graph, links, hops=1, pe_kind="dspd",
                                             seed=3, cache=PECache())
        chunks = [[0, 1, 2], [3, 4], [5]]
        chunked = map_dataset_chunks(dataset, chunks, workers=2)
        reference = SubgraphDataset.from_links(graph, links, hops=1, pe_kind="dspd",
                                               seed=3, cache=PECache())
        for chunk, samples in zip(chunks, chunked):
            reference.prefetch(chunk)
            for index, sample in zip(chunk, samples):
                expected = reference[index]
                np.testing.assert_array_equal(sample.node_ids, expected.node_ids)
                np.testing.assert_array_equal(sample.edge_index, expected.edge_index)
                np.testing.assert_array_equal(sample.pe, expected.pe)


class TestPicklability:
    def test_lazy_dataset_roundtrips(self, lazy_workload):
        graph, links = lazy_workload
        dataset = SubgraphDataset.from_links(graph, links, hops=1, pe_kind="dspd", seed=7)
        clone = pickle.loads(pickle.dumps(dataset))
        assert len(clone) == len(dataset)
        for index in (0, 5, len(dataset) - 1):
            a, b = dataset[index], clone[index]
            np.testing.assert_array_equal(a.node_ids, b.node_ids)
            np.testing.assert_array_equal(a.edge_index, b.edge_index)
            np.testing.assert_array_equal(a.pe, b.pe)
            assert a.extras["design"] == b.extras["design"]

    def test_subset_view_roundtrips(self, lazy_workload):
        graph, links = lazy_workload
        view = SubgraphDataset.from_links(graph, links, hops=1, seed=7).subset([4, 2, 9])
        clone = pickle.loads(pickle.dumps(view))
        np.testing.assert_array_equal(clone[1].node_ids, view[1].node_ids)

    def test_csr_pickle_drops_then_rebuilds_adjacency(self, lazy_workload):
        graph, _links = lazy_workload
        csr = graph.csr
        clone = pickle.loads(pickle.dumps(csr))
        np.testing.assert_array_equal(clone.indptr, csr.indptr)
        np.testing.assert_array_equal(clone.indices, csr.indices)
        np.testing.assert_array_equal(clone.edge_ids, csr.edge_ids)
        assert pickle.loads(pickle.dumps(graph))._csr is None  # cache not shipped


# --------------------------------------------------------------------------- #
# End-to-end determinism: training metrics and annotation JSON
# --------------------------------------------------------------------------- #
def _serving_pipeline():
    seed_all(0)
    config = (
        ExperimentConfig.fast()
        .with_model(dim=16, num_layers=1, pe_hidden=4, dropout=0.0, attention="none")
        .with_data(max_links_per_design=40, scale=0.3)
    )
    link_model = build_model(config)
    reg_model = build_model(config)
    return CircuitGPSPipeline.from_models(
        config, link_model, heads={("edge_regression", "all"): reg_model}
    )


def _annotation_payload(num_workers: int) -> bytes:
    pipeline = _serving_pipeline()
    engine = AnnotationEngine(pipeline, batch_size=32, cache=PECache(),
                              workers=num_workers)
    circuit = ssram(rows=4, cols=4).flatten()
    circuit.name = "PAR_JSON"
    graphs = [netlist_to_graph(circuit) for _ in range(3)]
    annotations = engine.annotate_many(graphs, max_candidates=16, seed=5,
                                       max_workers=num_workers)
    payload = [a.as_dict() for a in annotations]
    for report in payload:
        report["elapsed_seconds"] = 0.0  # wall-clock is the one legitimate difference
    return json.dumps(payload, sort_keys=True).encode()


def test_annotation_json_identical_across_worker_counts():
    baseline = _annotation_payload(0)
    for workers in WORKER_COUNTS[1:]:
        assert _annotation_payload(workers) == baseline, (
            f"annotation JSON changed with max_workers={workers}"
        )


def _train_fingerprint(num_workers: int, lazy_workload) -> tuple:
    graph, links = lazy_workload
    seed_all(0)
    config = (
        ExperimentConfig.fast()
        .with_model(dim=16, num_layers=1, pe_hidden=4, dropout=0.0, attention="none")
        .with_train(epochs=2, batch_size=16, num_workers=num_workers)
    )
    dataset = SubgraphDataset.from_links(graph, links, hops=1,
                                         pe_kind=config.model.pe_kind, seed=1,
                                         cache=PECache())
    model = build_model(config, rng=np.random.default_rng(0))
    trainer = Trainer(model, task="link", config=config.train, rng=np.random.default_rng(1))
    history = trainer.fit(dataset)
    weights = tuple(value.tobytes() for _key, value in sorted(model.state_dict().items()))
    losses = tuple(row["loss"] for row in history.history)
    metrics = trainer.evaluate(dataset)
    return losses, metrics, weights


def test_training_metrics_and_weights_identical_across_worker_counts(lazy_workload):
    baseline = _train_fingerprint(0, lazy_workload)
    for workers in WORKER_COUNTS[1:]:
        candidate = _train_fingerprint(workers, lazy_workload)
        assert candidate[0] == baseline[0], f"losses drifted at num_workers={workers}"
        assert candidate[1] == baseline[1], f"metrics drifted at num_workers={workers}"
        assert candidate[2] == baseline[2], f"weights drifted at num_workers={workers}"
