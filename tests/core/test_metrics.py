"""Tests for classification and regression metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    accuracy,
    classification_metrics,
    f1_score,
    mae,
    mape,
    r2_score,
    regression_metrics,
    rmse,
    roc_auc,
)


class TestClassification:
    def test_accuracy(self):
        assert accuracy([0.9, 0.2, 0.7, 0.4], [1, 0, 1, 1]) == pytest.approx(0.75)

    def test_f1_perfect(self):
        assert f1_score([0.9, 0.1, 0.8], [1, 0, 1]) == pytest.approx(1.0)

    def test_f1_no_positive_predictions(self):
        assert f1_score([0.1, 0.2], [1, 1]) == 0.0

    def test_f1_matches_manual_computation(self):
        scores = [0.9, 0.8, 0.3, 0.7, 0.1]
        labels = [1, 0, 1, 1, 0]
        # predictions: 1,1,0,1,0 -> tp=2, fp=1, fn=1
        expected = 2 * 2 / (2 * 2 + 1 + 1)
        assert f1_score(scores, labels) == pytest.approx(expected)

    def test_auc_perfect_and_inverted(self):
        assert roc_auc([0.9, 0.8, 0.2, 0.1], [1, 1, 0, 0]) == pytest.approx(1.0)
        assert roc_auc([0.1, 0.2, 0.8, 0.9], [1, 1, 0, 0]) == pytest.approx(0.0)

    def test_auc_with_ties_is_half(self):
        assert roc_auc([0.5, 0.5, 0.5, 0.5], [1, 0, 1, 0]) == pytest.approx(0.5)

    def test_auc_single_class_returns_half(self):
        assert roc_auc([0.3, 0.7], [1, 1]) == 0.5

    def test_auc_matches_pairwise_definition(self):
        rng = np.random.default_rng(0)
        scores = rng.random(50)
        labels = rng.integers(0, 2, 50)
        pos = scores[labels == 1]
        neg = scores[labels == 0]
        pairs = [(1.0 if p > n else 0.5 if p == n else 0.0) for p in pos for n in neg]
        assert roc_auc(scores, labels) == pytest.approx(np.mean(pairs))

    @settings(max_examples=100, deadline=None)
    @given(
        scores=st.lists(st.sampled_from([0.0, 0.1, 0.25, 0.25, 0.5, 0.5, 0.9, 1.0]),
                        min_size=2, max_size=40),
        seed=st.integers(0, 2 ** 16),
    )
    def test_auc_matches_pairwise_definition_with_ties(self, scores, seed):
        """Property: the vectorized tie-ranked AUC equals the naive pairwise
        AUC on arbitrary tied/untied score vectors."""
        rng = np.random.default_rng(seed)
        scores = np.array(scores)
        labels = rng.integers(0, 2, len(scores))
        if labels.min() == labels.max():
            labels[0] = 1 - labels[0]  # ensure both classes are present
        pos = scores[labels == 1]
        neg = scores[labels == 0]
        pairwise = np.mean([1.0 if p > n else 0.5 if p == n else 0.0
                            for p in pos for n in neg])
        assert roc_auc(scores, labels) == pytest.approx(pairwise)

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 2 ** 16), size=st.integers(2, 60))
    def test_auc_matches_pairwise_on_continuous_scores(self, seed, size):
        rng = np.random.default_rng(seed)
        scores = rng.random(size).round(1)  # rounding forces occasional ties
        labels = rng.integers(0, 2, size)
        if labels.min() == labels.max():
            labels[0] = 1 - labels[0]
        pos = scores[labels == 1]
        neg = scores[labels == 0]
        pairwise = np.mean([1.0 if p > n else 0.5 if p == n else 0.0
                            for p in pos for n in neg])
        assert roc_auc(scores, labels) == pytest.approx(pairwise)

    def test_bundle_keys(self):
        bundle = classification_metrics([0.9, 0.1], [1, 0])
        assert set(bundle) == {"accuracy", "f1", "auc"}

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy([0.5], [1, 0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy([], [])


class TestRegression:
    def test_mae_rmse(self):
        assert mae([1.0, 3.0], [0.0, 0.0]) == pytest.approx(2.0)
        assert rmse([1.0, 3.0], [0.0, 0.0]) == pytest.approx(np.sqrt(5.0))

    def test_r2_perfect_prediction(self):
        target = [0.1, 0.5, 0.9]
        assert r2_score(target, target) == pytest.approx(1.0)

    def test_r2_mean_prediction_is_zero(self):
        target = np.array([1.0, 2.0, 3.0])
        assert r2_score(np.full(3, 2.0), target) == pytest.approx(0.0)

    def test_r2_constant_target(self):
        assert r2_score([1.0, 1.0], [1.0, 1.0]) == 1.0
        assert r2_score([2.0, 0.0], [1.0, 1.0]) == 0.0

    def test_mape(self):
        assert mape([110.0, 90.0], [100.0, 100.0]) == pytest.approx(0.1)

    def test_bundle_keys(self):
        bundle = regression_metrics([0.1, 0.2], [0.15, 0.25])
        assert set(bundle) == {"mae", "rmse", "r2"}

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(-10, 10), min_size=2, max_size=30))
    def test_rmse_at_least_mae(self, values):
        target = np.zeros(len(values))
        assert rmse(values, target) >= mae(values, target) - 1e-12

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(0.01, 1.0), min_size=2, max_size=20),
           st.floats(-0.2, 0.2))
    def test_mae_shift_invariance(self, values, shift):
        values = np.array(values)
        assert mae(values + shift, values) == pytest.approx(abs(shift), abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 1), st.integers(0, 1)), min_size=4, max_size=40))
    def test_auc_is_probability(self, pairs):
        scores = [p[0] for p in pairs]
        labels = [p[1] for p in pairs]
        value = roc_auc(scores, labels)
        assert 0.0 <= value <= 1.0
