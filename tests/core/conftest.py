"""Shared fixtures for the annotation-service test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CircuitGPSPipeline, build_model
from repro.core.serve import AnnotationEngine
from repro.netlist import ssram, write_spice
from repro.utils import seed_all


@pytest.fixture(scope="session")
def server_engine(tiny_config):
    """A deterministic-extraction serving engine for the daemon tests.

    ``max_nodes_per_hop=None`` disables hub subsampling, so extraction is
    RNG-free and the server may coalesce extraction work across requests —
    the configuration the cross-request batching claims are made for.
    """
    seed_all(0)
    config = tiny_config.with_data(max_nodes_per_hop=None)
    link_model = build_model(config)
    reg_model = build_model(config)
    pipeline = CircuitGPSPipeline.from_models(
        config, link_model, heads={("edge_regression", "all"): reg_model})
    return AnnotationEngine(pipeline, workers=0)


@pytest.fixture(scope="session")
def server_spice() -> str:
    """SPICE text of a small SSRAM macro, as a client would send it."""
    return write_spice(ssram(rows=4, cols=2).flatten())


@pytest.fixture(scope="session")
def server_rng():
    return np.random.default_rng(11)
