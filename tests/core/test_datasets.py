"""Tests for dataset construction: normalisers, design data, task samples."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CapacitanceNormalizer, DesignData, StatsNormalizer
from repro.core.datasets import (
    build_edge_regression_samples,
    build_link_samples,
    build_node_regression_samples,
    load_design_suite,
)
from repro.graph import NODE_DEVICE
from repro.netlist import parse_spice, write_spice, timing_control


class TestCapacitanceNormalizer:
    def test_bounds_map_to_unit_interval(self):
        normalizer = CapacitanceNormalizer(1e-21, 1e-15)
        assert normalizer.normalize(1e-21) == pytest.approx(0.0)
        assert normalizer.normalize(1e-15) == pytest.approx(1.0)
        assert normalizer.normalize(1e-18) == pytest.approx(0.5)

    def test_zero_and_negative_map_to_zero(self):
        normalizer = CapacitanceNormalizer()
        assert normalizer.normalize(0.0) == 0.0
        assert normalizer.normalize(-1e-18) == 0.0

    def test_out_of_range_clipped(self):
        normalizer = CapacitanceNormalizer(1e-21, 1e-15)
        assert normalizer.normalize(1e-12) == 1.0
        assert normalizer.normalize(1e-24) == 0.0

    def test_in_range(self):
        normalizer = CapacitanceNormalizer(1e-21, 1e-15)
        assert normalizer.in_range(5e-18)
        assert not normalizer.in_range(1e-14)

    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            CapacitanceNormalizer(1e-15, 1e-21)
        with pytest.raises(ValueError):
            CapacitanceNormalizer(0.0, 1e-15)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(1e-21, 1e-15))
    def test_roundtrip(self, value):
        normalizer = CapacitanceNormalizer(1e-21, 1e-15)
        assert normalizer.denormalize(normalizer.normalize(value)) == pytest.approx(value, rel=1e-6)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(1e-21, 1e-15), st.floats(1e-21, 1e-15))
    def test_monotone(self, a, b):
        normalizer = CapacitanceNormalizer(1e-21, 1e-15)
        low, high = min(a, b), max(a, b)
        assert normalizer.normalize(low) <= normalizer.normalize(high) + 1e-12

    def test_array_helpers(self):
        normalizer = CapacitanceNormalizer()
        values = np.array([0.0, 1e-18, 1e-16])
        normalised = normalizer.normalize_array(values)
        assert normalised.shape == (3,)
        recovered = normalizer.denormalize_array(normalised)
        assert recovered[0] == 0.0
        assert recovered[1] == pytest.approx(1e-18, rel=1e-6)


class TestStatsNormalizer:
    def test_transform_clips_to_unit_interval(self):
        rng = np.random.default_rng(0)
        train = rng.uniform(0, 10, size=(30, 5))
        normalizer = StatsNormalizer.fit([train])
        test = rng.uniform(-5, 20, size=(10, 5))
        out = normalizer.transform(test)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_fit_on_multiple_matrices(self):
        a = np.zeros((5, 3))
        b = np.ones((5, 3)) * 10
        normalizer = StatsNormalizer.fit([a, b])
        np.testing.assert_allclose(normalizer.transform(b), np.ones((5, 3)))

    def test_constant_column_safe(self):
        normalizer = StatsNormalizer.fit([np.ones((4, 2))])
        assert np.all(np.isfinite(normalizer.transform(np.ones((4, 2)))))


class TestDesignData:
    def test_build_runs_full_pipeline(self):
        design = DesignData.build("TIMING_CONTROL", scale=0.3, seed=0)
        assert design.split == "test"
        assert design.graph.num_links > 0
        assert design.graph.node_ground_caps is not None

    def test_from_circuit_accepts_parsed_spice(self):
        text = write_spice(timing_control(num_outputs=2, pipeline_depth=1))
        circuit = parse_spice(text, name="parsed_tc")
        design = DesignData.from_circuit(circuit, seed=0)
        assert design.name == "parsed_tc"
        assert design.graph.num_nodes > 0
        assert design.graph.num_links > 0

    def test_apply_stats_normalizer(self, small_design):
        normalizer = StatsNormalizer.fit([small_design.raw_stats])
        small_design.apply_stats_normalizer(normalizer)
        assert small_design.graph.node_stats.max() <= 1.0
        assert small_design.raw_stats.max() > 1.0  # raw values preserved

    def test_load_design_suite_cached(self):
        a = load_design_suite(scale=0.25, seed=0, names=["TIMING_CONTROL"])
        b = load_design_suite(scale=0.25, seed=0, names=["TIMING_CONTROL"])
        assert a["TIMING_CONTROL"] is b["TIMING_CONTROL"]

    def test_load_design_suite_normalises_with_train_stats(self):
        suite = load_design_suite(scale=0.25, seed=1, names=["SSRAM", "TIMING_CONTROL"])
        for design in suite.values():
            assert design.graph.node_stats.max() <= 1.0 + 1e-9


class TestTaskSamples:
    def test_link_samples_balanced_and_encoded(self, small_design, tiny_config):
        samples = build_link_samples(small_design, tiny_config.data, pe_kind="dspd", rng=0)
        labels = np.array([s.label for s in samples])
        assert 0.35 <= labels.mean() <= 0.65
        assert all(s.pe is not None for s in samples)
        assert all(s.extras["design"] == small_design.name for s in samples)

    def test_edge_regression_targets_normalised(self, small_design, tiny_config):
        samples = build_edge_regression_samples(small_design, tiny_config.data, rng=0)
        targets = np.array([s.target for s in samples])
        assert targets.min() >= 0.0 and targets.max() <= 1.0
        positives = [s for s in samples if s.label == 1.0]
        assert all(s.target > 0 for s in positives)

    def test_edge_regression_negatives_have_zero_target(self, small_design, tiny_config):
        samples = build_edge_regression_samples(small_design, tiny_config.data,
                                                include_negatives=True, rng=0)
        negatives = [s for s in samples if s.label == 0.0]
        assert negatives
        assert all(s.target == 0.0 for s in negatives)

    def test_edge_regression_capacitance_recorded(self, small_design, tiny_config):
        samples = build_edge_regression_samples(small_design, tiny_config.data, rng=0)
        positive = next(s for s in samples if s.label == 1.0)
        assert positive.extras["capacitance_farad"] > 0

    def test_node_regression_samples(self, small_design, tiny_config):
        samples = build_node_regression_samples(small_design, tiny_config.data, rng=0)
        assert samples
        assert len(samples) <= tiny_config.data.max_nodes_per_design
        for sample in samples:
            assert sample.anchors == (0, 0)
            assert 0.0 <= sample.target <= 1.0
            node_type = small_design.graph.node_types[sample.extras["node"]]
            assert node_type != NODE_DEVICE

    def test_node_regression_requires_ground_caps(self, small_design, tiny_config):
        import copy

        design = copy.copy(small_design)
        design.graph = copy.copy(small_design.graph)
        design.graph.node_ground_caps = None
        with pytest.raises(ValueError):
            build_node_regression_samples(design, tiny_config.data, rng=0)
