"""Golden-file tests pinning the annotation service's wire protocol.

The committed files under ``tests/golden/`` are the protocol contract:

* ``serve_annotate_request.json``  — the client's request body,
* ``serve_annotate_response.json`` — a single-design response payload,
* ``serve_stream_chunks.ndjson``   — a streamed multi-design response
  (one ok report, one error report, the final ``done`` event),
* ``serve_healthz.json``           — the ``/healthz`` schema,
* ``serve_metrics.json``           — the ``/metrics`` schema after a fixed
  request sequence against a fresh daemon.

Volatile fields (uptime, wall-clock timestamps, latency measurements) are
zeroed and floats re-rounded to 6 significant digits before comparison, the
same normalisation as ``tests/test_golden.py``.  Refresh after an intended
protocol change with::

    PYTHONPATH=src python -m pytest tests/core/test_server_wire_golden.py --update-golden
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.core import CircuitGPSPipeline, ExperimentConfig, build_model
from repro.core.serve import AnnotationEngine
from repro.core.server import ServeClient, ServerConfig, ThreadedServer
from repro.netlist import ssram, write_spice
from repro.utils import seed_all

GOLDEN_DIR = pathlib.Path(__file__).parent.parent / "golden"
REQUEST_GOLDEN = GOLDEN_DIR / "serve_annotate_request.json"
RESPONSE_GOLDEN = GOLDEN_DIR / "serve_annotate_response.json"
STREAM_GOLDEN = GOLDEN_DIR / "serve_stream_chunks.ndjson"
HEALTHZ_GOLDEN = GOLDEN_DIR / "serve_healthz.json"
METRICS_GOLDEN = GOLDEN_DIR / "serve_metrics.json"

PAIRS = [["BL0", "BL1"], ["BL0", "BLB0"], ["WL0", "WL1"]]

# Fields whose values are wall-clock dependent, zeroed before comparison.
VOLATILE = ("uptime_seconds", "started_unix", "sum_seconds",
            "p50_seconds", "p95_seconds")


def _normalize(value):
    """Zero volatile timing fields; round floats to 6 significant digits."""
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return float(f"{value:.6g}")
    if isinstance(value, dict):
        return {key: 0.0 if key in VOLATILE else _normalize(item)
                for key, item in value.items()}
    if isinstance(value, list):
        return [_normalize(item) for item in value]
    return value


def _normalized_json(payload) -> str:
    return json.dumps(_normalize(payload), indent=2, sort_keys=True) + "\n"


def _check_golden(path: pathlib.Path, actual: str, update: bool) -> None:
    if update:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(actual)
        return
    assert path.exists(), (
        f"golden file {path} is missing; create it with --update-golden"
    )
    assert actual == path.read_text(), (
        f"wire output differs from golden file {path.name}; if the protocol "
        "change is intended, refresh with: pytest "
        "tests/core/test_server_wire_golden.py --update-golden"
    )


def _golden_engine() -> AnnotationEngine:
    """The same deterministic serving pipeline as tests/test_golden.py."""
    seed_all(0)
    config = (
        ExperimentConfig.fast()
        .with_model(dim=16, num_layers=1, pe_hidden=4, dropout=0.0,
                    attention="none")
        .with_data(max_nodes_per_hop=None)
    )
    pipeline = CircuitGPSPipeline.from_models(
        config,
        build_model(config, rng=np.random.default_rng(0)),
        heads={("edge_regression", "all"):
               build_model(config, rng=np.random.default_rng(1))},
    )
    return AnnotationEngine(pipeline, workers=0)


@pytest.fixture(scope="module")
def golden_spice() -> str:
    circuit = ssram(rows=4, cols=4)
    circuit.name = "GOLDEN_MACRO"
    return write_spice(circuit)


@pytest.fixture()
def golden_server():
    """A fresh daemon per test: /metrics counters must be exact."""
    # window 0: no coalescing delay, so the request sequence fully
    # determines every counter and histogram bucket.
    config = ServerConfig(port=0, batch_window_ms=0.0)
    with ThreadedServer(_golden_engine(), config,
                        extra_info={"backend": "numpy"}) as threaded:
        yield ServeClient(threaded.url, timeout=30.0)


def _annotate_request(golden_spice: str) -> dict:
    return {"spice": golden_spice, "name": "GOLDEN_MACRO",
            "pairs": PAIRS, "seed": 0, "threshold": 0.25}


class TestWireGoldens:
    def test_request_body(self, golden_spice, update_golden):
        """The request schema itself is part of the pinned protocol."""
        request = dict(_annotate_request(golden_spice), spice="<SPICE_TEXT>")
        _check_golden(REQUEST_GOLDEN, _normalized_json(request), update_golden)

    def test_annotate_response(self, golden_server, golden_spice, update_golden):
        raw = golden_server.annotate_raw(_annotate_request(golden_spice))
        _check_golden(RESPONSE_GOLDEN, _normalized_json(json.loads(raw)),
                      update_golden)

    def test_stream_chunks(self, golden_server, golden_spice, update_golden):
        """Streamed NDJSON: ok report, isolated error report, done event."""
        designs = [
            {"spice": golden_spice, "name": "GOLDEN_MACRO", "pairs": PAIRS},
            {"spice": "C1 a b 1f\n.end\n", "name": "BROKEN", "pairs": PAIRS},
        ]
        lines = []
        response = golden_server._open(
            "POST", "/annotate",
            json.dumps({"designs": designs, "seed": 0, "threshold": 0.25,
                        "stream": True}).encode())
        try:
            assert response.status == 200
            assert response.getheader("Content-Type") == "application/x-ndjson"
            while True:
                line = response.readline()
                if not line:
                    break
                lines.append(json.loads(line))
        finally:
            response.close()
        actual = "".join(json.dumps(_normalize(line), sort_keys=True) + "\n"
                         for line in lines)
        _check_golden(STREAM_GOLDEN, actual, update_golden)

    def test_healthz(self, golden_server, update_golden):
        _check_golden(HEALTHZ_GOLDEN, _normalized_json(golden_server.healthz()),
                      update_golden)

    def test_metrics_after_fixed_sequence(self, golden_server, golden_spice,
                                          update_golden):
        """Counters and histogram after exactly one annotate request."""
        golden_server.annotate_raw(_annotate_request(golden_spice))
        _check_golden(METRICS_GOLDEN,
                      _normalized_json(golden_server.metrics()), update_golden)


def test_wire_golden_files_are_committed():
    for path in (REQUEST_GOLDEN, RESPONSE_GOLDEN, STREAM_GOLDEN,
                 HEALTHZ_GOLDEN, METRICS_GOLDEN):
        assert path.exists(), f"{path.name} missing; run --update-golden"
