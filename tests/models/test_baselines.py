"""Tests for the ParaGraph and DLPL-Cap baseline models."""

import numpy as np
import pytest

from repro.models import DLPLCap, FullGraphEncoder, ParaGraph
from repro.nn import no_grad


@pytest.fixture(scope="module")
def graph_inputs(small_design):
    graph = small_design.graph
    return FullGraphEncoder.graph_inputs(graph, graph.node_stats), graph


class TestFullGraphEncoder:
    def test_embedding_shape(self, graph_inputs):
        inputs, graph = graph_inputs
        encoder = FullGraphEncoder(dim=16, num_layers=2, rng=0)
        out = encoder(inputs)
        assert out.shape == (graph.num_nodes, 16)
        assert np.all(np.isfinite(out.data))

    def test_directed_edges_doubled(self, graph_inputs):
        inputs, graph = graph_inputs
        assert inputs["edge_index"].shape[1] == 2 * graph.num_edges


class TestParaGraph:
    def test_link_logits_shape(self, graph_inputs):
        inputs, graph = graph_inputs
        model = ParaGraph(dim=16, num_layers=2, rng=0)
        pairs = np.array([[l.source, l.target] for l in graph.links[:20]])
        embeddings = model.encode(inputs)
        assert model.link_logits(embeddings, pairs).shape == (20,)

    def test_edge_regression_uses_soft_ensemble(self, graph_inputs):
        inputs, graph = graph_inputs
        model = ParaGraph(dim=16, num_layers=2, num_magnitude_bins=3, rng=0)
        pairs = np.array([[l.source, l.target] for l in graph.links[:10]])
        embeddings = model.encode(inputs)
        out = model.edge_regression(embeddings, pairs)
        assert out.shape == (10,)
        assert len(model.experts) == 3

    def test_node_regression_shape(self, graph_inputs):
        inputs, graph = graph_inputs
        model = ParaGraph(dim=16, num_layers=2, rng=0)
        embeddings = model.encode(inputs)
        nodes = np.arange(15)
        assert model.node_regression(embeddings, nodes).shape == (15,)

    def test_gradients_flow_to_encoder(self, graph_inputs):
        inputs, graph = graph_inputs
        model = ParaGraph(dim=8, num_layers=1, rng=0)
        pairs = np.array([[l.source, l.target] for l in graph.links[:5]])
        loss = (model.link_logits(model.encode(inputs), pairs) ** 2).sum()
        loss.backward()
        assert any(p.grad is not None for p in model.encoder.parameters())


class TestDLPLCap:
    def test_has_five_experts_by_default(self):
        model = DLPLCap(dim=8, num_layers=1, rng=0)
        assert model.num_experts == 5
        assert len(model.experts) == 5
        assert len(model.node_experts) == 5

    def test_router_distribution_shape(self, graph_inputs):
        inputs, graph = graph_inputs
        model = DLPLCap(dim=16, num_layers=2, rng=0)
        pairs = np.array([[l.source, l.target] for l in graph.links[:12]])
        logits = model.router_logits(model.encode(inputs), pairs)
        assert logits.shape == (12, 5)

    def test_edge_and_node_regression_shapes(self, graph_inputs):
        inputs, graph = graph_inputs
        model = DLPLCap(dim=16, num_layers=2, rng=0)
        with no_grad():
            embeddings = model.encode(inputs)
            pairs = np.array([[l.source, l.target] for l in graph.links[:7]])
            assert model.edge_regression(embeddings, pairs).shape == (7,)
            assert model.node_regression(embeddings, np.arange(9)).shape == (9,)

    def test_baseline_trainer_rejects_wrong_model(self, tiny_config):
        from repro.core import BaselineTrainer
        from repro.models import CircuitGPS

        with pytest.raises(TypeError):
            BaselineTrainer(CircuitGPS(dim=16, num_layers=1, attention="none"), task="link",
                            config=tiny_config.train, data_config=tiny_config.data)
