"""Tests for the hybrid GPS layer (MPNN + attention)."""

import numpy as np
import pytest

from repro.models import ATTENTION_CHOICES, MPNN_CHOICES, GPSLayer
from repro.nn import Tensor


def _inputs(num_nodes=9, dim=16, seed=0):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(num_nodes, dim)), requires_grad=True)
    edge_index = np.array([[0, 1, 3, 4, 6, 7], [1, 2, 4, 5, 7, 8]])
    edge_index = np.concatenate([edge_index, edge_index[::-1]], axis=1)
    edge_attr = Tensor(rng.normal(size=(edge_index.shape[1], dim)))
    batch = np.repeat(np.arange(3), 3)
    return x, edge_attr, edge_index, batch


class TestConfigurations:
    @pytest.mark.parametrize("mpnn", MPNN_CHOICES)
    @pytest.mark.parametrize("attention", ATTENTION_CHOICES)
    def test_all_valid_combinations(self, mpnn, attention):
        if mpnn == "none" and attention == "none":
            with pytest.raises(ValueError):
                GPSLayer(16, mpnn=mpnn, attention=attention, rng=0)
            return
        layer = GPSLayer(16, mpnn=mpnn, attention=attention, num_heads=4, rng=0)
        x, e, idx, batch = _inputs()
        out, e_out = layer(x, e, idx, batch)
        assert out.shape == (9, 16)
        assert np.all(np.isfinite(out.data))

    def test_invalid_names_raise(self):
        with pytest.raises(ValueError):
            GPSLayer(16, mpnn="gcn2", rng=0)
        with pytest.raises(ValueError):
            GPSLayer(16, attention="linformer", rng=0)

    def test_parameter_counts_differ_between_configs(self):
        full = GPSLayer(16, mpnn="gatedgcn", attention="transformer", rng=0)
        mpnn_only = GPSLayer(16, mpnn="gatedgcn", attention="none", rng=0)
        attn_only = GPSLayer(16, mpnn="none", attention="transformer", rng=0)
        assert full.num_parameters() > mpnn_only.num_parameters()
        assert full.num_parameters() > attn_only.num_parameters()


class TestBehaviour:
    def test_gradients_flow(self):
        layer = GPSLayer(16, mpnn="gatedgcn", attention="transformer", rng=0)
        x, e, idx, batch = _inputs()
        out, _ = layer(x, e, idx, batch)
        (out ** 2).sum().backward()
        assert x.grad is not None
        assert any(p.grad is not None for p in layer.parameters())

    def test_edge_features_updated_only_with_mpnn(self):
        x, e, idx, batch = _inputs()
        attn_only = GPSLayer(16, mpnn="none", attention="transformer", rng=0)
        _, e_out = attn_only(x, e, idx, batch)
        np.testing.assert_allclose(e_out.data, e.data)
        with_mpnn = GPSLayer(16, mpnn="gatedgcn", attention="none", rng=0)
        _, e_out2 = with_mpnn(x, e, idx, batch)
        assert not np.allclose(e_out2.data, e.data)

    def test_attention_isolated_per_graph(self):
        layer = GPSLayer(16, mpnn="none", attention="transformer", rng=0)
        layer.eval()
        x, e, idx, batch = _inputs()
        out_a, _ = layer(x.detach(), e, np.zeros((2, 0), dtype=np.int64), batch)
        modified = x.data.copy()
        modified[6:] += 10.0  # perturb the third graph only
        out_b, _ = layer(Tensor(modified), e, np.zeros((2, 0), dtype=np.int64), batch)
        np.testing.assert_allclose(out_a.data[:6], out_b.data[:6], atol=1e-8)

    def test_repr_mentions_configuration(self):
        layer = GPSLayer(16, mpnn="gatedgcn", attention="performer", rng=0)
        assert "gatedgcn" in repr(layer)
        assert "performer" in repr(layer)
