"""Tests for the GatedGCN message-passing layer."""

import numpy as np
import pytest

from repro.models import GatedGCNLayer
from repro.nn import Tensor


def _graph_inputs(num_nodes=6, dim=8, seed=0):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(num_nodes, dim)), requires_grad=True)
    edge_index = np.array([[0, 1, 2, 3, 4, 0], [1, 2, 3, 4, 5, 5]])
    edge_index = np.concatenate([edge_index, edge_index[::-1]], axis=1)
    edge_attr = Tensor(rng.normal(size=(edge_index.shape[1], dim)), requires_grad=True)
    return x, edge_attr, edge_index


class TestGatedGCN:
    def test_output_shapes(self):
        layer = GatedGCNLayer(8, rng=0)
        x, e, idx = _graph_inputs()
        x_out, e_out = layer(x, e, idx)
        assert x_out.shape == x.shape
        assert e_out.shape == e.shape

    def test_empty_edge_list_is_identity(self):
        layer = GatedGCNLayer(8, rng=0)
        x = Tensor(np.random.default_rng(0).normal(size=(4, 8)))
        e = Tensor(np.zeros((0, 8)))
        x_out, e_out = layer(x, e, np.zeros((2, 0), dtype=np.int64))
        np.testing.assert_allclose(x_out.data, x.data)
        assert e_out.shape == (0, 8)

    def test_gradients_reach_inputs_and_parameters(self):
        layer = GatedGCNLayer(8, rng=0)
        x, e, idx = _graph_inputs()
        out, _ = layer(x, e, idx)
        (out ** 2).sum().backward()
        assert x.grad is not None and np.any(x.grad != 0)
        assert e.grad is not None
        assert layer.A.weight.grad is not None

    def test_isolated_node_updates_through_self_term(self):
        layer = GatedGCNLayer(4, rng=0)
        layer.eval()
        x = Tensor(np.random.default_rng(0).normal(size=(3, 4)))
        edge_index = np.array([[0, 1], [1, 0]])
        e = Tensor(np.random.default_rng(1).normal(size=(2, 4)))
        out, _ = layer(x, e, edge_index)
        # Node 2 has no edges; with residual it should still be finite and changed by U x.
        assert np.all(np.isfinite(out.data[2]))

    def test_message_locality(self):
        """A node's update must not depend on non-neighbouring nodes."""
        layer = GatedGCNLayer(6, rng=0)
        layer.eval()
        rng = np.random.default_rng(0)
        x_data = rng.normal(size=(4, 6))
        edge_index = np.array([[0, 1], [1, 0]])  # only 0 <-> 1 connected
        e = Tensor(rng.normal(size=(2, 6)))
        out_a, _ = layer(Tensor(x_data), e, edge_index)
        modified = x_data.copy()
        modified[3] += 10.0  # node 3 is not a neighbour of node 0
        out_b, _ = layer(Tensor(modified), e, edge_index)
        np.testing.assert_allclose(out_a.data[0], out_b.data[0], atol=1e-10)

    def test_residual_can_be_disabled(self):
        with_res = GatedGCNLayer(4, residual=True, rng=0)
        without = GatedGCNLayer(4, residual=False, rng=0)
        without.load_state_dict(with_res.state_dict())
        with_res.eval()
        without.eval()
        x, e, idx = _graph_inputs(num_nodes=6, dim=4, seed=1)
        out_res, _ = with_res(x.detach(), e.detach(), idx)
        out_plain, _ = without(x.detach(), e.detach(), idx)
        np.testing.assert_allclose(out_res.data, out_plain.data + x.data, atol=1e-10)
