"""Tests for the task-specific heads (Eq. 6-7)."""

import numpy as np
import pytest

from repro.graph.hetero import NODE_DEVICE, NODE_NET, NODE_PIN
from repro.models import CircuitStatsProjection, LinkPredictionHead, RegressionHead
from repro.nn import Tensor


def _embeddings(num_nodes=8, dim=12, seed=0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=(num_nodes, dim)), requires_grad=True)


class TestLinkPredictionHead:
    def test_output_shape(self):
        head = LinkPredictionHead(12, rng=0)
        batch = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        anchors = np.array([[0, 1], [4, 5]])
        out = head(_embeddings(), batch, anchors)
        assert out.shape == (2,)

    def test_gradients_flow(self):
        head = LinkPredictionHead(12, rng=0)
        embeddings = _embeddings()
        batch = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        anchors = np.array([[0, 1], [4, 5]])
        head(embeddings, batch, anchors).sum().backward()
        assert embeddings.grad is not None
        assert np.any(embeddings.grad[0] != 0)  # anchor contributes directly


class TestCircuitStatsProjection:
    def test_each_node_type_uses_its_projection(self):
        projection = CircuitStatsProjection(dim=6, stats_dim=13, rng=0)
        stats = np.random.default_rng(0).uniform(size=(3, 13))
        stats[:, 0] = [1.0, 2.0, 3.0]
        types = np.array([NODE_NET, NODE_DEVICE, NODE_PIN])
        out = projection(stats, types)
        assert out.shape == (3, 6)
        # Pin rows come from an embedding of the (integer) pin code, so changing
        # the other stats entries must not change the pin row.
        stats2 = stats.copy()
        stats2[2, 5] = 99.0
        out2 = projection(stats2, types)
        np.testing.assert_allclose(out.data[2], out2.data[2])
        # Net rows use the linear projection, so they do change.
        stats3 = stats.copy()
        stats3[0, 5] = 99.0
        out3 = projection(stats3, types)
        assert not np.allclose(out.data[0], out3.data[0])

    def test_pin_codes_clipped_to_table(self):
        projection = CircuitStatsProjection(dim=4, stats_dim=13, num_pin_types=4, rng=0)
        stats = np.zeros((1, 13))
        stats[0, 0] = 17.0  # out-of-range pin code
        out = projection(stats, np.array([NODE_PIN]))
        assert np.all(np.isfinite(out.data))


class TestRegressionHead:
    def test_output_shape_and_gradients(self):
        head = RegressionHead(12, stats_dim=13, rng=0)
        embeddings = _embeddings()
        stats = np.random.default_rng(1).uniform(size=(8, 13))
        types = np.array([NODE_NET, NODE_PIN, NODE_DEVICE, NODE_NET,
                          NODE_NET, NODE_PIN, NODE_DEVICE, NODE_PIN])
        batch = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        anchors = np.array([[0, 1], [4, 5]])
        out = head(embeddings, stats, types, batch, anchors)
        assert out.shape == (2,)
        out.sum().backward()
        assert embeddings.grad is not None
        assert any(p.grad is not None for p in head.stats_projection.parameters())

    def test_uses_circuit_statistics(self):
        """Changing X_C of an anchor must change the regression output (Eq. 6-7)."""
        head = RegressionHead(12, stats_dim=13, rng=0)
        head.eval()
        embeddings = _embeddings().detach()
        stats = np.random.default_rng(1).uniform(size=(8, 13))
        types = np.array([NODE_NET] * 8)
        batch = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        anchors = np.array([[0, 1], [4, 5]])
        base = head(embeddings, stats, types, batch, anchors).data
        stats2 = stats.copy()
        stats2[0] += 1.0
        changed = head(embeddings, stats2, types, batch, anchors).data
        assert not np.allclose(base[0], changed[0])
        np.testing.assert_allclose(base[1], changed[1])
