"""Tests for the CircuitGPS model (encoders, trunk, heads, fine-tuning hooks)."""

import numpy as np
import pytest

from repro.graph import collate, compute_pe, sample_link_dataset
from repro.models import CircuitGPS
from repro.nn import no_grad


@pytest.fixture(scope="module")
def batch(small_design):
    samples = sample_link_dataset(small_design.graph, max_links=20, max_nodes_per_hop=15, rng=0)
    for sample in samples:
        compute_pe(sample, "dspd")
    return collate(samples[:12])


@pytest.fixture(scope="module")
def model():
    return CircuitGPS(dim=24, num_layers=2, pe_kind="dspd", pe_hidden=8,
                      attention="none", dropout=0.0, rng=0)


class TestForward:
    def test_link_output_shape(self, model, batch):
        out = model(batch, task="link")
        assert out.shape == (batch.num_graphs,)

    def test_regression_output_shapes(self, model, batch):
        assert model(batch, task="edge_regression").shape == (batch.num_graphs,)
        assert model(batch, task="node_regression").shape == (batch.num_graphs,)

    def test_unknown_task_raises(self, model, batch):
        with pytest.raises(ValueError):
            model(batch, task="classification")

    def test_encode_returns_node_embeddings(self, model, batch):
        embeddings = model.encode(batch)
        assert embeddings.shape == (batch.num_nodes, model.dim)

    def test_pe_dimension_mismatch_raises(self, model, batch):
        import copy

        wrong = copy.copy(batch)
        wrong.pe = np.zeros((batch.num_nodes, 3))
        with pytest.raises(ValueError):
            model.encode(wrong)

    def test_pe_none_model_ignores_pe(self, batch):
        model = CircuitGPS(dim=16, num_layers=1, pe_kind="none", attention="none", rng=0)
        out = model(batch, task="link")
        assert out.shape == (batch.num_graphs,)

    def test_dim_must_exceed_pe_hidden(self):
        with pytest.raises(ValueError):
            CircuitGPS(dim=8, pe_hidden=8, rng=0)

    def test_deterministic_in_eval_mode(self, model, batch):
        model.eval()
        with no_grad():
            a = model(batch, task="link").data
            b = model(batch, task="link").data
        np.testing.assert_allclose(a, b)
        model.train()


class TestConfigurationsAndParams:
    @pytest.mark.parametrize("pe_kind", ["none", "dspd", "drnl", "rwse", "lappe", "stats"])
    def test_all_pe_kinds_build(self, pe_kind, small_design):
        samples = sample_link_dataset(small_design.graph, max_links=5, max_nodes_per_hop=10, rng=0)
        for sample in samples:
            compute_pe(sample, pe_kind)
        model = CircuitGPS(dim=16, num_layers=1, pe_kind=pe_kind, pe_hidden=4,
                           attention="none", rng=0)
        out = model(collate(samples), task="link")
        assert np.all(np.isfinite(out.data))

    def test_parameter_count_grows_with_width_and_depth(self):
        small = CircuitGPS(dim=16, num_layers=1, attention="none", rng=0)
        wide = CircuitGPS(dim=32, num_layers=1, attention="none", rng=0)
        deep = CircuitGPS(dim=16, num_layers=3, attention="none", rng=0)
        assert wide.num_parameters() > small.num_parameters()
        assert deep.num_parameters() > small.num_parameters()

    def test_config_roundtrip(self, model):
        cfg = model.config()
        clone = CircuitGPS(**{**cfg, "num_heads": 4, "dropout": 0.0}, rng=1)
        assert clone.dim == model.dim
        assert clone.pe_kind == model.pe_kind

    def test_state_dict_roundtrip_preserves_outputs(self, model, batch):
        clone = CircuitGPS(dim=24, num_layers=2, pe_kind="dspd", pe_hidden=8,
                           attention="none", dropout=0.0, rng=99)
        clone.load_state_dict(model.state_dict())
        model.eval()
        clone.eval()
        with no_grad():
            np.testing.assert_allclose(model(batch, task="link").data,
                                       clone(batch, task="link").data, atol=1e-10)
        model.train()


class TestFinetuningHooks:
    def test_freeze_backbone_keeps_head_trainable(self, batch):
        model = CircuitGPS(dim=16, num_layers=1, attention="none", rng=0)
        model.freeze_backbone()
        backbone_flags = [p.requires_grad for m in model.backbone_modules()
                          for p in m.parameters()]
        head_flags = [p.requires_grad for p in model.edge_head.parameters()]
        assert not any(backbone_flags)
        assert all(head_flags)
        model.unfreeze_backbone()
        assert all(p.requires_grad for m in model.backbone_modules() for p in m.parameters())

    def test_head_parameters_selector(self):
        model = CircuitGPS(dim=16, num_layers=1, attention="none", rng=0)
        link_params = model.head_parameters("link")
        edge_params = model.head_parameters("edge_regression")
        node_params = model.head_parameters("node_regression")
        assert link_params and edge_params and node_params
        assert {id(p) for p in edge_params}.isdisjoint({id(p) for p in node_params})
        with pytest.raises(ValueError):
            model.head_parameters("unknown")

    def test_frozen_backbone_gradients_not_computed(self, batch):
        model = CircuitGPS(dim=16, num_layers=1, attention="none", dropout=0.0, rng=0)
        model.freeze_backbone()
        loss = (model(batch, task="edge_regression") ** 2).sum()
        loss.backward()
        assert all(p.grad is None for m in model.backbone_modules() for p in m.parameters())
        assert any(p.grad is not None for p in model.edge_head.parameters())
