"""Tests for the shared utilities: RNG, logging, serialization, timing."""

import time

import numpy as np
import pytest

from repro.utils import (
    CheckpointError,
    MetricLogger,
    Timer,
    checkpoint_schema,
    get_logger,
    get_rng,
    load_checkpoint,
    load_json,
    save_checkpoint,
    save_json,
    seed_all,
    spawn_rng,
    spawn_seeds,
    timed,
    validate_state_keys,
)


class TestRng:
    def test_seed_all_reproducible(self):
        a = seed_all(123).random(5)
        b = seed_all(123).random(5)
        np.testing.assert_allclose(a, b)

    def test_get_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert get_rng(rng) is rng

    def test_get_rng_from_seed(self):
        np.testing.assert_allclose(get_rng(5).random(3), np.random.default_rng(5).random(3))

    def test_get_rng_none_uses_global(self):
        seed_all(99)
        expected = np.random.default_rng(99).random(3)
        np.testing.assert_allclose(get_rng(None).random(3), expected)

    def test_spawn_rng_independent(self):
        seed_all(7)
        child_a = spawn_rng()
        child_b = spawn_rng()
        assert not np.allclose(child_a.random(4), child_b.random(4))

    def test_spawn_seeds_deterministic_and_distinct(self):
        seeds = spawn_seeds(0, 8)
        assert seeds == spawn_seeds(0, 8)
        assert len(set(seeds)) == 8

    def test_spawn_seeds_offset_slices_the_same_stream(self):
        # Grouped spawning (offset) must reproduce the one-shot spawning:
        # spawn_seeds(s, n)[i:j] == spawn_seeds(s, j - i, offset=i).
        full = spawn_seeds(42, 10)
        assert full[3:7] == spawn_seeds(42, 4, offset=3)
        assert full[:2] == spawn_seeds(42, 2)

    def test_spawn_seeds_nearby_bases_do_not_collide(self):
        """Regression: additive per-design seeding (``seed + i``) made design
        i under base seed s reuse the exact RNG stream of design i - 1 under
        base seed s + 1.  SeedSequence spawning keys the child stream on the
        (base, index) pair, so nearby bases share nothing."""
        overlap = set(spawn_seeds(0, 16)) & set(spawn_seeds(1, 16))
        assert not overlap
        rng_a = np.random.default_rng(spawn_seeds(0, 2)[1])
        rng_b = np.random.default_rng(spawn_seeds(1, 2)[0])
        assert not np.allclose(rng_a.random(8), rng_b.random(8))


class TestLogging:
    def test_get_logger_idempotent_handlers(self):
        logger_a = get_logger("repro.test")
        logger_b = get_logger("repro.test")
        assert logger_a is logger_b
        assert len(logger_a.handlers) == 1

    def test_metric_logger_history_and_best(self):
        logger = MetricLogger("demo")
        logger.log(0, loss=1.0, acc=0.5)
        logger.log(1, loss=0.5, acc=0.8)
        logger.log(2, loss=0.7, acc=0.7)
        assert logger.last()["loss"] == 0.7
        assert logger.best("loss", mode="min")["epoch"] == 1
        assert logger.best("acc", mode="max")["epoch"] == 1
        assert "loss" in logger.as_table()

    def test_metric_logger_errors(self):
        logger = MetricLogger()
        with pytest.raises(IndexError):
            logger.last()
        logger.log(0, loss=1.0)
        with pytest.raises(KeyError):
            logger.best("nonexistent")

    def test_empty_table(self):
        assert MetricLogger().as_table() == "(empty)"


class TestSerialization:
    def test_checkpoint_roundtrip(self, tmp_path):
        state = {"layer.weight": np.random.default_rng(0).normal(size=(4, 3)),
                 "layer.bias": np.zeros(3)}
        path = save_checkpoint(tmp_path / "model.npz", state, metadata={"dim": 4})
        loaded, metadata = load_checkpoint(path)
        assert metadata == {"dim": 4}
        for key, value in state.items():
            np.testing.assert_allclose(loaded[key], value)

    def test_checkpoint_without_metadata(self, tmp_path):
        path = save_checkpoint(tmp_path / "m.npz", {"w": np.ones(2)})
        _, metadata = load_checkpoint(path)
        assert metadata == {}

    def test_json_roundtrip_with_numpy_types(self, tmp_path):
        payload = {"acc": np.float64(0.93), "count": np.int64(5), "values": np.arange(3)}
        path = save_json(tmp_path / "results.json", payload)
        loaded = load_json(path)
        assert loaded["acc"] == pytest.approx(0.93)
        assert loaded["count"] == 5
        assert loaded["values"] == [0, 1, 2]

    def test_model_state_dict_roundtrip_through_checkpoint(self, tmp_path):
        from repro.nn import MLP, Tensor

        model = MLP([3, 4, 1], rng=0)
        path = save_checkpoint(tmp_path / "mlp.npz", model.state_dict())
        clone = MLP([3, 4, 1], rng=1)
        state, _ = load_checkpoint(path)
        clone.load_state_dict(state)
        x = Tensor(np.random.default_rng(2).normal(size=(5, 3)))
        np.testing.assert_allclose(model(x).data, clone(x).data)


class TestCheckpointValidation:
    def test_schema_stamp_roundtrip(self, tmp_path):
        path = save_checkpoint(tmp_path / "m.npz", {"w": np.ones(2)},
                               schema="demo", version=3)
        assert checkpoint_schema(path) == ("demo", 3)
        state, _ = load_checkpoint(path, schema="demo", version=3)
        np.testing.assert_allclose(state["w"], np.ones(2))

    def test_legacy_archive_has_no_schema(self, tmp_path):
        path = save_checkpoint(tmp_path / "m.npz", {"w": np.ones(2)})
        assert checkpoint_schema(path) == (None, None)

    def test_wrong_schema_raises(self, tmp_path):
        path = save_checkpoint(tmp_path / "m.npz", {"w": np.ones(2)}, schema="demo")
        with pytest.raises(CheckpointError, match="schema"):
            load_checkpoint(path, schema="other")

    def test_legacy_archive_rejected_when_schema_required(self, tmp_path):
        path = save_checkpoint(tmp_path / "m.npz", {"w": np.ones(2)})
        with pytest.raises(CheckpointError, match="schema"):
            load_checkpoint(path, schema="demo")

    def test_version_mismatch_raises(self, tmp_path):
        path = save_checkpoint(tmp_path / "m.npz", {"w": np.ones(2)},
                               schema="demo", version=1)
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path, schema="demo", version=2)

    def test_missing_and_unexpected_keys_raise(self, tmp_path):
        path = save_checkpoint(tmp_path / "m.npz", {"w": np.ones(2), "extra": np.ones(1)})
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(path, expected_keys={"w", "b"})
        message = str(excinfo.value)
        assert "missing=['b']" in message and "unexpected=['extra']" in message

    def test_missing_file_raises_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_checkpoint(tmp_path / "nope.npz")

    def test_reserved_key_rejected_on_save(self, tmp_path):
        with pytest.raises(CheckpointError, match="reserved"):
            save_checkpoint(tmp_path / "m.npz", {"__metadata__": np.ones(1)})

    def test_validate_state_keys_passes_on_exact_match(self):
        validate_state_keys({"a": 1, "b": 2}, {"a", "b"})
        with pytest.raises(CheckpointError):
            validate_state_keys({"a": 1}, {"a", "b"})


class TestTiming:
    def test_timer_accumulates(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        with timer:
            time.sleep(0.01)
        assert timer.count == 2
        assert timer.total >= 0.02
        assert timer.mean == pytest.approx(timer.total / 2)

    def test_timer_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_timed_context(self):
        store = {}
        with timed(store, "phase"):
            time.sleep(0.005)
        assert store["phase"] >= 0.005
        with timed(store, "phase"):
            pass
        assert store["phase"] >= 0.005  # accumulates
