"""Test utilities: numerical gradient checking for the autograd engine."""

from __future__ import annotations

import numpy as np

from repro.nn import Tensor

__all__ = ["numerical_gradient", "assert_gradients_close"]


def numerical_gradient(func, tensor: Tensor, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``func`` (returning a scalar Tensor) w.r.t. ``tensor``."""
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = func().item()
        flat[index] = original - eps
        minus = func().item()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * eps)
    return grad


def assert_gradients_close(func, tensor: Tensor, atol: float = 1e-5, rtol: float = 1e-4) -> None:
    """Compare autograd gradients against numerical gradients."""
    tensor.grad = None
    loss = func()
    loss.backward()
    analytic = tensor.grad.copy()
    numeric = numerical_gradient(func, tensor)
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)
