"""Tests for Linear, Embedding, MLP, normalisation and dropout layers."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    BatchNorm1d,
    Dropout,
    Embedding,
    Identity,
    LayerNorm,
    Linear,
    Tensor,
)

from ..helpers import assert_gradients_close


class TestLinear:
    def test_output_shape(self):
        layer = Linear(5, 3, rng=0)
        out = layer(Tensor(np.ones((7, 5))))
        assert out.shape == (7, 3)

    def test_no_bias(self):
        layer = Linear(5, 3, bias=False, rng=0)
        assert layer.bias is None
        assert layer.num_parameters() == 15

    def test_zero_input_gives_bias(self):
        layer = Linear(4, 2, rng=0)
        out = layer(Tensor(np.zeros((3, 4))))
        np.testing.assert_allclose(out.data, np.zeros((3, 2)))

    def test_gradients_flow_to_weights(self):
        layer = Linear(4, 2, rng=0)
        x = Tensor(np.random.default_rng(0).normal(size=(5, 4)))
        assert_gradients_close(lambda: layer(x).sum(), layer.weight)
        assert_gradients_close(lambda: layer(x).sum(), layer.bias)


class TestEmbedding:
    def test_lookup_shape(self):
        table = Embedding(10, 6, rng=0)
        out = table(np.array([0, 3, 9]))
        assert out.shape == (3, 6)

    def test_same_index_same_vector(self):
        table = Embedding(4, 3, rng=0)
        out = table(np.array([2, 2]))
        np.testing.assert_allclose(out.data[0], out.data[1])

    def test_out_of_range_raises(self):
        table = Embedding(4, 3, rng=0)
        with pytest.raises(IndexError):
            table(np.array([4]))
        with pytest.raises(IndexError):
            table(np.array([-1]))

    def test_gradient_accumulates_for_repeated_indices(self):
        table = Embedding(4, 3, rng=0)
        out = table(np.array([1, 1, 2])).sum()
        out.backward()
        assert table.weight.grad[1].sum() == pytest.approx(6.0)
        assert table.weight.grad[2].sum() == pytest.approx(3.0)
        assert table.weight.grad[0].sum() == pytest.approx(0.0)


class TestNormalisation:
    def test_batchnorm_normalises_training_batch(self):
        bn = BatchNorm1d(4)
        x = Tensor(np.random.default_rng(0).normal(loc=5.0, scale=3.0, size=(64, 4)))
        out = bn(x)
        np.testing.assert_allclose(out.data.mean(axis=0), np.zeros(4), atol=1e-6)
        np.testing.assert_allclose(out.data.std(axis=0), np.ones(4), atol=1e-2)

    def test_batchnorm_eval_uses_running_stats(self):
        bn = BatchNorm1d(2, momentum=0.5)
        x = Tensor(np.random.default_rng(0).normal(loc=2.0, size=(32, 2)))
        bn(x)
        bn.eval()
        single = bn(Tensor(np.array([[2.0, 2.0]])))
        assert np.all(np.isfinite(single.data))

    def test_batchnorm_rejects_3d(self):
        with pytest.raises(ValueError):
            BatchNorm1d(3)(Tensor(np.zeros((2, 3, 4))))

    def test_layernorm_normalises_rows(self):
        ln = LayerNorm(6)
        x = Tensor(np.random.default_rng(0).normal(size=(5, 6)) * 10 + 3)
        out = ln(x)
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(5), atol=1e-7)

    def test_layernorm_gradients(self):
        ln = LayerNorm(4)
        x = Tensor(np.random.default_rng(0).normal(size=(3, 4)), requires_grad=True)
        assert_gradients_close(lambda: (ln(x) ** 2).sum(), x, atol=1e-4)


class TestDropout:
    def test_identity_in_eval_mode(self):
        drop = Dropout(0.5, rng=0)
        drop.eval()
        x = Tensor(np.ones((10, 10)))
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_identity_with_zero_rate(self):
        drop = Dropout(0.0, rng=0)
        x = Tensor(np.ones((10, 10)))
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_training_mode_zeroes_entries_and_rescales(self):
        drop = Dropout(0.5, rng=0)
        x = Tensor(np.ones((200, 50)))
        out = drop(x).data
        assert np.any(out == 0.0)
        assert out.max() == pytest.approx(2.0)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestMLP:
    def test_forward_shape(self):
        mlp = MLP([5, 8, 3], rng=0)
        out = mlp(Tensor(np.ones((4, 5))))
        assert out.shape == (4, 3)

    def test_requires_two_dims(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_activation_choices(self):
        for activation in ("relu", "gelu", "tanh", "none"):
            mlp = MLP([3, 3, 3], activation=activation, rng=0)
            assert mlp(Tensor(np.ones((2, 3)))).shape == (2, 3)
        with pytest.raises(ValueError):
            MLP([3, 3, 3], activation="swish", rng=0)(Tensor(np.ones((2, 3))))

    def test_identity_module(self):
        x = Tensor(np.ones((2, 3)))
        assert Identity()(x) is x

    def test_mlp_can_fit_linear_function(self):
        from repro.nn import Adam, mse_loss

        rng = np.random.default_rng(0)
        x = rng.normal(size=(128, 3))
        y = x @ np.array([[1.0], [-2.0], [0.5]])
        mlp = MLP([3, 16, 1], rng=0)
        optimizer = Adam(mlp.parameters(), lr=1e-2)
        for _ in range(200):
            loss = mse_loss(mlp(Tensor(x)), Tensor(y))
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert loss.item() < 0.05
