"""Parity and selection tests for the pluggable compute backends (PR 6).

Every registered backend must compute exactly what the reference numpy
backend computes — primitives and composites, forward *and* gradients —
across the workload shapes that break naive segment kernels: ragged
segments, empty segments, a single node, and interleaved (unsorted) segment
ids.  Optional backends (numba, torch) skip cleanly where their dependency
is missing; the numpy rows of each sweep always run, so the harness itself
stays continuously verified.

Tolerances: float64 parity is ``1e-6`` absolute/relative (in practice the
kernels agree to the last ulp — accumulation order is pinned to source-row
order); float32 parity is ``1e-5`` relative, the documented serving
tolerance (~2^-23 rounding accumulated over segment sums).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import BACKENDS
from repro.nn import Tensor, use_backend
from repro.nn import functional as F
from repro.nn.backends import (
    ArrayBackend,
    BackendUnavailableError,
    NumpyBackend,
    active_backend,
    available_backends,
    set_backend,
)
from repro.nn.backends.numba_backend import _as_2d

F64_TOL = dict(rtol=1e-6, atol=1e-6)
F32_TOL = dict(rtol=1e-5, atol=1e-5)

REFERENCE = NumpyBackend()


def _backend_or_skip(name: str) -> ArrayBackend:
    try:
        return BACKENDS.build(name)
    except BackendUnavailableError as exc:
        pytest.skip(str(exc))


def all_backend_names() -> list[str]:
    return sorted(BACKENDS.names())


# --------------------------------------------------------------------------- #
# Workloads: the shapes that break naive segment kernels
# --------------------------------------------------------------------------- #
def _workloads():
    rng = np.random.default_rng(0)
    ragged = np.repeat(np.arange(6), [3, 1, 4, 2, 5, 1])
    cases = {
        "ragged": (rng.normal(size=(16, 5)), ragged, 6),
        # segments 1 and 3 of 5 are empty
        "empty_segments": (rng.normal(size=(7, 4)),
                           np.array([0, 0, 2, 2, 2, 4, 4]), 5),
        "single_node": (rng.normal(size=(1, 3)), np.array([0]), 1),
        # unsorted ids: rows of one segment interleaved with other segments'
        "interleaved": (rng.normal(size=(10, 2)),
                        np.array([2, 0, 1, 2, 0, 1, 2, 0, 1, 2]), 3),
        "vector_rows": (rng.normal(size=12), np.repeat(np.arange(4), 3), 4),
    }
    return cases


WORKLOADS = _workloads()


@pytest.mark.parametrize("name", all_backend_names())
@pytest.mark.parametrize("case", sorted(WORKLOADS))
def test_primitive_parity_float64(name, case):
    backend = _backend_or_skip(name)
    src, idx, num_segments = WORKLOADS[case]
    for op in ("scatter_add", "segment_sum", "segment_mean", "segment_max",
               "segment_softmax"):
        got = getattr(backend, op)(src, idx, num_segments)
        want = getattr(REFERENCE, op)(src, idx, num_segments)
        np.testing.assert_allclose(got, want, err_msg=f"{name}.{op} on {case}",
                                   **F64_TOL)
    np.testing.assert_allclose(backend.gather_rows(src, idx),
                               REFERENCE.gather_rows(src, idx), **F64_TOL)
    np.testing.assert_allclose(backend.segment_counts(idx, num_segments),
                               REFERENCE.segment_counts(idx, num_segments),
                               **F64_TOL)


@pytest.mark.parametrize("name", all_backend_names())
@pytest.mark.parametrize("case", sorted(WORKLOADS))
def test_primitive_parity_float32(name, case):
    """Float32 in, float32 out, within the documented serving tolerance."""
    backend = _backend_or_skip(name)
    src64, idx, num_segments = WORKLOADS[case]
    src = src64.astype(np.float32)
    for op in ("scatter_add", "segment_mean", "segment_max", "segment_softmax"):
        got = getattr(backend, op)(src, idx, num_segments)
        assert got.dtype == np.float32, f"{name}.{op} promoted float32"
        want = getattr(REFERENCE, op)(src64, idx, num_segments)
        np.testing.assert_allclose(got, want, err_msg=f"{name}.{op} on {case}",
                                   **F32_TOL)


@pytest.mark.parametrize("name", all_backend_names())
def test_padded_roundtrip_and_matmul_parity(name):
    backend = _backend_or_skip(name)
    rng = np.random.default_rng(1)
    src, idx, num_segments = WORKLOADS["ragged"]
    info = F.segment_info(idx)
    padded = backend.to_padded(src, info.flat, num_segments, info.max_count)
    np.testing.assert_allclose(
        padded, REFERENCE.to_padded(src, info.flat, num_segments, info.max_count),
        **F64_TOL)
    np.testing.assert_allclose(backend.from_padded(padded, info.flat), src,
                               **F64_TOL)
    a, b = rng.normal(size=(2, 3, 4, 5)), rng.normal(size=(2, 3, 5, 4))
    np.testing.assert_allclose(backend.matmul(a, b), a @ b, **F64_TOL)
    x = rng.normal(size=(4, 7)) * 50  # large magnitudes: sigmoid must not overflow
    for op in ("exp", "log", "tanh", "sigmoid", "relu"):
        arg = np.abs(x) + 0.1 if op == "log" else x
        with np.errstate(over="raise"):
            got = getattr(backend, op)(arg)
        np.testing.assert_allclose(got, getattr(REFERENCE, op)(arg), **F64_TOL)


@pytest.mark.parametrize("name", all_backend_names())
@pytest.mark.parametrize("case", sorted(WORKLOADS))
def test_gradient_parity_with_numpy(name, case):
    """Autograd under each backend matches the numpy-backend gradients.

    The graph exercises every dispatched kernel family: gather, scatter,
    segment-softmax attention weighting, a matmul and the transcendental
    chain (gelu -> sigmoid), on each adversarial workload shape.
    """
    backend = _backend_or_skip(name)
    src, idx, num_segments = WORKLOADS[case]
    if src.ndim == 1:
        src = src.reshape(-1, 1)
    rng = np.random.default_rng(2)
    weight = rng.normal(size=(src.shape[1], src.shape[1]))

    def run(active) -> tuple[np.ndarray, np.ndarray]:
        with use_backend(active):
            x = Tensor(src.copy(), requires_grad=True)
            w = Tensor(weight.copy(), requires_grad=True)
            h = (x @ w).gelu()
            scores = h.sum(axis=1)
            attn = F.segment_softmax(scores, idx, num_segments)
            weighted = h * attn.reshape(-1, 1)
            pooled = F.segment_sum(weighted, idx, num_segments)
            out = pooled.gather_rows(idx).sigmoid()
            out.sum().backward()
            return x.grad.copy(), w.grad.copy()

    x_grad, w_grad = run(backend)
    x_want, w_want = run(REFERENCE)
    np.testing.assert_allclose(x_grad, x_want, **F64_TOL)
    np.testing.assert_allclose(w_grad, w_want, **F64_TOL)


def test_numpy_backend_scatter_add_unique_matches_general():
    src = np.arange(12.0).reshape(4, 3)
    idx = np.array([3, 1, 0, 2])
    np.testing.assert_array_equal(
        REFERENCE.scatter_add(src, idx, 5, unique=True),
        REFERENCE.scatter_add(src, idx, 5, unique=False))


def test_numba_as_2d_view_shapes():
    src = np.arange(24.0).reshape(2, 3, 4)
    flat, trailing = _as_2d(src)
    assert flat.shape == (2, 12) and trailing == (3, 4)
    assert flat.flags["C_CONTIGUOUS"]


# --------------------------------------------------------------------------- #
# Selection: registry, set/use, env default, unavailable handling
# --------------------------------------------------------------------------- #
def test_backends_registered():
    names = BACKENDS.names()
    assert {"numpy", "numba", "torch"} <= set(names)
    assert "numpy" in available_backends()


def test_set_backend_returns_previous_and_use_backend_restores():
    baseline = active_backend()
    try:
        previous = set_backend("numpy")
        assert previous is baseline
        inner = NumpyBackend()
        with use_backend(inner) as active:
            assert active is inner
            assert active_backend() is inner
        assert isinstance(active_backend(), NumpyBackend)
        assert active_backend() is not inner
    finally:
        set_backend(baseline)


def test_unavailable_backend_raises_actionable_error():
    unavailable = [name for name in BACKENDS.names()
                   if name not in available_backends()]
    if not unavailable:
        pytest.skip("all optional backends are installed here")
    name = unavailable[0]
    with pytest.raises(BackendUnavailableError, match=name):
        set_backend(name)
    # a failed switch must not clobber the active backend
    assert isinstance(active_backend(), ArrayBackend)


def test_unknown_backend_lists_registered_names():
    with pytest.raises(Exception, match="numpy"):
        set_backend("no-such-backend")


def test_repro_backend_env_fallback_warns(monkeypatch):
    import repro.nn.backends as backends_module

    unavailable = [name for name in BACKENDS.names()
                   if name not in available_backends()]
    target = unavailable[0] if unavailable else "no-such-backend"
    monkeypatch.setenv("REPRO_BACKEND", target)
    monkeypatch.setattr(backends_module, "_ACTIVE", None)
    with pytest.warns(RuntimeWarning, match="falling back"):
        backend = backends_module.active_backend()
    assert isinstance(backend, NumpyBackend)


def test_repro_backend_env_numpy_is_silent(monkeypatch):
    import warnings

    import repro.nn.backends as backends_module

    monkeypatch.setenv("REPRO_BACKEND", "numpy")
    monkeypatch.setattr(backends_module, "_ACTIVE", None)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert isinstance(backends_module.active_backend(), NumpyBackend)


def test_backend_repr_names():
    assert "numpy" in repr(NumpyBackend())
