"""Tests for the Module base class: registration, modes, state dicts."""

import numpy as np
import pytest

from repro.nn import MLP, Linear, Module, ModuleList, Parameter, Sequential, Tensor


class _ToyModel(Module):
    def __init__(self):
        super().__init__()
        self.first = Linear(4, 8, rng=0)
        self.second = Linear(8, 2, rng=0)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.second(self.first(x).relu()) * self.scale


class TestRegistration:
    def test_named_parameters_include_children(self):
        model = _ToyModel()
        names = dict(model.named_parameters()).keys()
        assert "first.weight" in names
        assert "second.bias" in names
        assert "scale" in names

    def test_num_parameters(self):
        model = _ToyModel()
        expected = 4 * 8 + 8 + 8 * 2 + 2 + 1
        assert model.num_parameters() == expected

    def test_modules_iteration(self):
        model = _ToyModel()
        assert len(list(model.modules())) == 3  # model + two Linears

    def test_train_eval_propagates(self):
        model = _ToyModel()
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())


class TestStateDict:
    def test_roundtrip(self):
        model_a = _ToyModel()
        model_b = _ToyModel()
        model_b.load_state_dict(model_a.state_dict())
        x = Tensor(np.random.default_rng(0).normal(size=(3, 4)))
        np.testing.assert_allclose(model_a(x).data, model_b(x).data)

    def test_strict_missing_key_raises(self):
        model = _ToyModel()
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = _ToyModel()
        state = model.state_dict()
        state["scale"] = np.ones(5)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_non_strict_ignores_extra_keys(self):
        model = _ToyModel()
        state = model.state_dict()
        state["does.not.exist"] = np.ones(1)
        model.load_state_dict(state, strict=False)


class TestFreezing:
    def test_freeze_disables_grads(self):
        model = _ToyModel()
        model.freeze()
        assert all(not p.requires_grad for p in model.parameters())
        model.unfreeze()
        assert all(p.requires_grad for p in model.parameters())

    def test_zero_grad_clears(self):
        model = _ToyModel()
        out = model(Tensor(np.ones((2, 4)))).sum()
        out.backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestContainers:
    def test_module_list_registration(self):
        layers = ModuleList([Linear(2, 2, rng=0), Linear(2, 2, rng=0)])
        assert len(layers) == 2
        assert len(list(layers.parameters())) == 4
        assert isinstance(layers[1], Linear)

    def test_module_list_cannot_be_called(self):
        with pytest.raises(RuntimeError):
            ModuleList([Linear(2, 2)])(Tensor(np.ones((1, 2))))

    def test_sequential_chains(self):
        seq = Sequential(Linear(3, 5, rng=0), Linear(5, 2, rng=0))
        out = seq(Tensor(np.ones((4, 3))))
        assert out.shape == (4, 2)
        assert len(seq) == 2

    def test_mlp_is_module(self):
        assert isinstance(MLP([2, 2]), Module)


class TestCast:
    """Module.cast powers the float32 serving path (PR 6)."""

    def _model_with_buffer(self):
        model = Sequential(Linear(3, 5, rng=0), Linear(5, 2, rng=0))
        model.register_buffer("scale", np.linspace(0.0, 1.0, 4))
        return model

    def test_cast_converts_parameters_grads_and_buffers(self):
        model = self._model_with_buffer()
        out = model(Tensor(np.ones((4, 3))))
        out.sum().backward()
        assert model.cast(np.float32) is model
        for param in model.parameters():
            assert param.data.dtype == np.float32
            if param.grad is not None:
                assert param.grad.dtype == np.float32
        assert model.scale.dtype == np.float32

    def test_cast_roundtrip_preserves_values_within_float32(self):
        model = self._model_with_buffer()
        before = model.state_dict()
        model.cast(np.float32).cast(np.float64)
        for name, value in model.state_dict().items():
            np.testing.assert_allclose(value, before[name], rtol=1e-6, atol=1e-7)

    def test_cast_rejects_non_float_dtypes(self):
        model = self._model_with_buffer()
        with pytest.raises(ValueError, match="float32/float64"):
            model.cast(np.int64)

    def test_state_dict_loads_into_cast_model_at_model_dtype(self):
        source = self._model_with_buffer()
        target = self._model_with_buffer().cast(np.float32)
        target.load_state_dict(source.state_dict())
        for param in target.parameters():
            assert param.data.dtype == np.float32
        assert target.scale.dtype == np.float32
