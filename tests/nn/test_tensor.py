"""Unit and gradient-check tests for the autograd Tensor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import Tensor, concat, no_grad, stack

from ..helpers import assert_gradients_close


class TestBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float64
        assert not t.requires_grad

    def test_requires_grad_flag(self):
        t = Tensor(np.ones(3), requires_grad=True)
        assert t.requires_grad

    def test_detach_breaks_graph(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert np.shares_memory(d.data, t.data)

    def test_item_and_len(self):
        assert Tensor([[2.5]]).item() == pytest.approx(2.5)
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_backward_requires_scalar(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        t = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            t.sum().backward()

    def test_no_grad_context(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = (t * 2).sum()
        assert not out.requires_grad

    def test_zero_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t.sum()).backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None


class TestArithmeticValues:
    def test_add_sub_mul_div(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([3.0, 4.0])
        np.testing.assert_allclose((a + b).data, [4.0, 6.0])
        np.testing.assert_allclose((a - b).data, [-2.0, -2.0])
        np.testing.assert_allclose((a * b).data, [3.0, 8.0])
        np.testing.assert_allclose((a / b).data, [1 / 3, 0.5])

    def test_scalar_operands(self):
        a = Tensor([1.0, 2.0])
        np.testing.assert_allclose((a + 1).data, [2.0, 3.0])
        np.testing.assert_allclose((1 + a).data, [2.0, 3.0])
        np.testing.assert_allclose((2 - a).data, [1.0, 0.0])
        np.testing.assert_allclose((a * 3).data, [3.0, 6.0])
        np.testing.assert_allclose((6 / a).data, [6.0, 3.0])
        np.testing.assert_allclose((-a).data, [-1.0, -2.0])
        np.testing.assert_allclose((a ** 2).data, [1.0, 4.0])

    def test_matmul_shapes(self):
        a = Tensor(np.ones((3, 4)))
        b = Tensor(np.ones((4, 5)))
        assert (a @ b).shape == (3, 5)

    def test_broadcast_add(self):
        a = Tensor(np.ones((3, 4)))
        b = Tensor(np.ones(4))
        assert (a + b).shape == (3, 4)

    def test_reductions(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        assert a.sum().item() == pytest.approx(15.0)
        assert a.mean().item() == pytest.approx(2.5)
        np.testing.assert_allclose(a.sum(axis=0).data, [3.0, 5.0, 7.0])
        np.testing.assert_allclose(a.max(axis=1).data, [2.0, 5.0])

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(5, 7)))
        probs = x.softmax(axis=-1)
        np.testing.assert_allclose(probs.data.sum(axis=-1), np.ones(5), atol=1e-12)

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 6)))
        np.testing.assert_allclose(x.log_softmax().data, np.log(x.softmax().data), atol=1e-10)


class TestGradients:
    """Numerical gradient checks for each primitive."""

    def _tensor(self, shape=(3, 4), seed=0):
        rng = np.random.default_rng(seed)
        return Tensor(rng.normal(size=shape), requires_grad=True)

    def test_add_grad(self):
        a, b = self._tensor(), self._tensor(seed=1)
        assert_gradients_close(lambda: (a + b * 2).sum(), a)

    def test_mul_grad(self):
        a, b = self._tensor(), self._tensor(seed=1)
        assert_gradients_close(lambda: (a * b).sum(), a)
        assert_gradients_close(lambda: (a * b).sum(), b)

    def test_div_grad(self):
        a = self._tensor()
        b = Tensor(np.random.default_rng(1).uniform(0.5, 2.0, size=(3, 4)), requires_grad=True)
        assert_gradients_close(lambda: (a / b).sum(), a)
        assert_gradients_close(lambda: (a / b).sum(), b)

    def test_matmul_grad(self):
        a = self._tensor((3, 4))
        b = self._tensor((4, 2), seed=2)
        assert_gradients_close(lambda: (a @ b).sum(), a)
        assert_gradients_close(lambda: (a @ b).sum(), b)

    def test_batched_matmul_grad(self):
        a = self._tensor((2, 3, 4))
        b = self._tensor((2, 4, 5), seed=3)
        assert_gradients_close(lambda: a.matmul(b).sum(), a, atol=1e-4)
        assert_gradients_close(lambda: a.matmul(b).sum(), b, atol=1e-4)

    def test_pow_grad(self):
        a = Tensor(np.random.default_rng(0).uniform(0.5, 2.0, size=(3, 3)), requires_grad=True)
        assert_gradients_close(lambda: (a ** 3).sum(), a)

    def test_broadcast_grad(self):
        a = self._tensor((3, 4))
        b = self._tensor((4,), seed=5)
        assert_gradients_close(lambda: (a + b).sum(), b)
        assert_gradients_close(lambda: (a * b).sum(), b)

    def test_sum_mean_grad(self):
        a = self._tensor()
        assert_gradients_close(lambda: a.sum(axis=0).sum(), a)
        assert_gradients_close(lambda: a.mean(axis=1).sum(), a)

    def test_elementwise_grads(self):
        a = self._tensor()
        assert_gradients_close(lambda: a.tanh().sum(), a)
        assert_gradients_close(lambda: a.sigmoid().sum(), a)
        assert_gradients_close(lambda: a.exp().sum(), a)
        assert_gradients_close(lambda: a.gelu().sum(), a, atol=1e-4)

    def test_log_sqrt_grads(self):
        a = Tensor(np.random.default_rng(0).uniform(0.5, 2.0, size=(3, 3)), requires_grad=True)
        assert_gradients_close(lambda: a.log().sum(), a)
        assert_gradients_close(lambda: a.sqrt().sum(), a)

    def test_relu_grad_away_from_kink(self):
        a = Tensor(np.array([[1.0, -2.0], [3.0, -0.5]]), requires_grad=True)
        assert_gradients_close(lambda: a.relu().sum(), a)

    def test_abs_grad_away_from_zero(self):
        a = Tensor(np.array([1.0, -2.0, 3.0]), requires_grad=True)
        assert_gradients_close(lambda: a.abs().sum(), a)

    def test_softmax_grad(self):
        a = self._tensor((4, 5))
        weights = Tensor(np.random.default_rng(9).normal(size=(4, 5)))
        assert_gradients_close(lambda: (a.softmax(axis=-1) * weights).sum(), a)

    def test_log_softmax_grad(self):
        a = self._tensor((4, 5))
        weights = Tensor(np.random.default_rng(9).normal(size=(4, 5)))
        assert_gradients_close(lambda: (a.log_softmax(axis=-1) * weights).sum(), a)

    def test_reshape_transpose_grad(self):
        a = self._tensor((2, 6))
        assert_gradients_close(lambda: (a.reshape(3, 4).transpose() * 2).sum(), a)

    def test_getitem_grad(self):
        a = self._tensor((5, 3))
        assert_gradients_close(lambda: a[1:4].sum(), a)

    def test_gather_rows_grad(self):
        a = self._tensor((6, 3))
        idx = np.array([0, 2, 2, 5])
        assert_gradients_close(lambda: a.gather_rows(idx).sum(), a)

    def test_scatter_add_grad(self):
        a = self._tensor((6, 3))
        idx = np.array([0, 1, 0, 2, 2, 1])
        weights = Tensor(np.random.default_rng(3).normal(size=(3, 3)))
        assert_gradients_close(lambda: (a.scatter_add(idx, 3) * weights).sum(), a)

    def test_clip_grad_inside_range(self):
        a = Tensor(np.array([0.2, 0.5, 0.7]), requires_grad=True)
        assert_gradients_close(lambda: a.clip(0.0, 1.0).sum(), a)

    def test_max_grad_no_ties(self):
        a = Tensor(np.array([[1.0, 5.0, 2.0], [7.0, 3.0, 4.0]]), requires_grad=True)
        assert_gradients_close(lambda: a.max(axis=1).sum(), a)

    def test_concat_grad(self):
        a = self._tensor((2, 3))
        b = self._tensor((4, 3), seed=11)
        assert_gradients_close(lambda: concat([a, b], axis=0).sum(), a)
        assert_gradients_close(lambda: concat([a, b], axis=0).sum(), b)

    def test_stack_grad(self):
        a = self._tensor((2, 3))
        b = self._tensor((2, 3), seed=12)
        assert_gradients_close(lambda: stack([a, b], axis=0).sum(), a)

    def test_gradient_accumulation_over_reuse(self):
        a = self._tensor((3, 3))
        loss = (a * a).sum() + a.sum()
        loss.backward()
        np.testing.assert_allclose(a.grad, 2 * a.data + 1.0, atol=1e-10)


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(arrays(np.float64, array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=5),
                  elements=st.floats(-10, 10)))
    def test_add_commutative(self, values):
        a = Tensor(values)
        b = Tensor(values[::-1].copy() if values.ndim == 1 else values)
        np.testing.assert_allclose((a + b).data, (b + a).data)

    @settings(max_examples=30, deadline=None)
    @given(arrays(np.float64, array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=6),
                  elements=st.floats(-5, 5)))
    def test_softmax_invariant_to_shift(self, values):
        a = Tensor(values)
        shifted = Tensor(values + 100.0)
        np.testing.assert_allclose(a.softmax(axis=-1).data, shifted.softmax(axis=-1).data,
                                   atol=1e-8)

    @settings(max_examples=30, deadline=None)
    @given(arrays(np.float64, st.tuples(st.integers(1, 6), st.integers(1, 4)),
                  elements=st.floats(-5, 5)),
           st.integers(0, 3))
    def test_scatter_gather_roundtrip_sum(self, values, num_extra):
        """scatter_add then total sum equals the original total sum."""
        tensor = Tensor(values)
        idx = np.arange(values.shape[0]) % (1 + num_extra)
        scattered = tensor.scatter_add(idx, 1 + num_extra)
        np.testing.assert_allclose(scattered.data.sum(), values.sum(), atol=1e-8)
