"""Tests for the functional interface (scatter ops, pooling, segment softmax)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn import functional as F

from ..helpers import assert_gradients_close


class TestScatterOps:
    def test_scatter_add_values(self):
        src = Tensor(np.array([[1.0], [2.0], [3.0], [4.0]]))
        out = F.scatter_add(src, np.array([0, 1, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[4.0], [6.0]])

    def test_scatter_mean_values(self):
        src = Tensor(np.array([[2.0], [4.0], [6.0]]))
        out = F.scatter_mean(src, np.array([0, 0, 1]), 3)
        np.testing.assert_allclose(out.data, [[3.0], [6.0], [0.0]])

    def test_scatter_max_values(self):
        src = Tensor(np.array([[1.0], [5.0], [3.0]]))
        out = F.scatter_max(src, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[5.0], [3.0]])

    def test_scatter_mean_empty_bucket_is_zero(self):
        src = Tensor(np.ones((2, 3)))
        out = F.scatter_mean(src, np.array([0, 0]), 4)
        np.testing.assert_allclose(out.data[1:], np.zeros((3, 3)))

    def test_scatter_add_gradients(self):
        src = Tensor(np.random.default_rng(0).normal(size=(5, 2)), requires_grad=True)
        weights = Tensor(np.random.default_rng(1).normal(size=(3, 2)))
        assert_gradients_close(
            lambda: (F.scatter_add(src, np.array([0, 1, 2, 0, 1]), 3) * weights).sum(), src)

    def test_scatter_mean_gradients(self):
        src = Tensor(np.random.default_rng(0).normal(size=(4, 2)), requires_grad=True)
        assert_gradients_close(
            lambda: (F.scatter_mean(src, np.array([0, 0, 1, 1]), 2) ** 2).sum(), src)


class TestSegmentSoftmax:
    def test_sums_to_one_per_segment(self):
        scores = Tensor(np.random.default_rng(0).normal(size=(6, 1)))
        index = np.array([0, 0, 1, 1, 1, 2])
        out = F.segment_softmax(scores, index, 3)
        sums = np.zeros(3)
        np.add.at(sums, index, out.data[:, 0])
        np.testing.assert_allclose(sums, np.ones(3), atol=1e-8)

    def test_stable_with_large_scores(self):
        scores = Tensor(np.array([[1000.0], [1000.0], [999.0]]))
        out = F.segment_softmax(scores, np.array([0, 0, 0]), 1)
        assert np.all(np.isfinite(out.data))

    def test_gradients(self):
        scores = Tensor(np.random.default_rng(0).normal(size=(5, 1)), requires_grad=True)
        index = np.array([0, 0, 1, 1, 1])
        weights = Tensor(np.random.default_rng(1).normal(size=(5, 1)))
        assert_gradients_close(
            lambda: (F.segment_softmax(scores, index, 2) * weights).sum(), scores, atol=1e-4)


class TestSegmentOps:
    """The segment engine: values, gradients, empty segments, padding."""

    def test_segment_sum_matches_scatter_add(self):
        src = Tensor(np.random.default_rng(0).normal(size=(6, 3)))
        index = np.array([0, 2, 1, 2, 0, 1])
        np.testing.assert_allclose(F.segment_sum(src, index, 3).data,
                                   F.scatter_add(src, index, 3).data)

    def test_segment_mean_values(self):
        src = Tensor(np.array([[2.0], [4.0], [9.0]]))
        out = F.segment_mean(src, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0], [9.0]])

    def test_segment_max_values_and_empty_segment(self):
        src = Tensor(np.array([[1.0], [5.0], [-3.0]]))
        out = F.segment_max(src, np.array([0, 0, 2]), 4)
        np.testing.assert_allclose(out.data, [[5.0], [0.0], [-3.0], [0.0]])

    def test_segment_sum_gradients(self):
        src = Tensor(np.random.default_rng(0).normal(size=(5, 2)), requires_grad=True)
        weights = Tensor(np.random.default_rng(1).normal(size=(3, 2)))
        assert_gradients_close(
            lambda: (F.segment_sum(src, np.array([0, 1, 2, 0, 1]), 3) * weights).sum(), src)

    def test_segment_max_gradients(self):
        # Distinct values keep the argmax stable under finite-difference probes.
        src = Tensor(np.array([[1.0, 7.0], [4.0, 2.0], [9.0, 3.0], [0.5, 5.0]]),
                     requires_grad=True)
        weights = Tensor(np.random.default_rng(1).normal(size=(2, 2)))
        assert_gradients_close(
            lambda: (F.segment_max(src, np.array([0, 0, 1, 1]), 2) * weights).sum(), src)

    def test_segment_softmax_gradients(self):
        scores = Tensor(np.random.default_rng(2).normal(size=(6, 1)), requires_grad=True)
        index = np.array([0, 1, 0, 1, 1, 2])
        weights = Tensor(np.random.default_rng(3).normal(size=(6, 1)))
        assert_gradients_close(
            lambda: (F.segment_softmax(scores, index, 3) * weights).sum(), scores, atol=1e-4)

    def test_ops_on_single_node_graphs(self):
        """Every segment holds one row: reductions are the identity."""
        src = Tensor(np.random.default_rng(4).normal(size=(4, 3)), requires_grad=True)
        index = np.arange(4)
        np.testing.assert_allclose(F.segment_sum(src, index, 4).data, src.data)
        np.testing.assert_allclose(F.segment_mean(src, index, 4).data, src.data)
        np.testing.assert_allclose(F.segment_max(src, index, 4).data, src.data)
        np.testing.assert_allclose(F.segment_softmax(src, index, 4).data,
                                   np.ones_like(src.data))

    def test_empty_segment_receives_no_gradient(self):
        src = Tensor(np.ones((2, 2)), requires_grad=True)
        out = F.segment_sum(src, np.array([0, 3]), 5)
        out.sum().backward()
        np.testing.assert_allclose(src.grad, np.ones((2, 2)))

    def test_segment_info_layout(self):
        seg = F.segment_info(np.array([4, 0, 4, 0, 0, 9]))
        assert seg.num_segments == 3
        np.testing.assert_array_equal(seg.index, [1, 0, 1, 0, 0, 2])
        np.testing.assert_array_equal(seg.counts, [3, 2, 1])
        np.testing.assert_array_equal(seg.slots, [0, 0, 1, 1, 2, 0])
        assert seg.max_count == 3
        assert seg.mask.sum() == 6

    def test_segment_info_passthrough_and_empty(self):
        seg = F.segment_info(np.array([0, 0, 1]))
        assert F.segment_info(seg) is seg
        empty = F.segment_info(np.zeros(0, dtype=np.int64))
        assert empty.num_segments == 0 and empty.max_count == 0

    def test_ops_accept_segment_info(self):
        src = Tensor(np.random.default_rng(5).normal(size=(5, 2)))
        index = np.array([0, 1, 0, 2, 1])
        seg = F.segment_info(index)
        for op in (F.segment_sum, F.segment_mean, F.segment_max, F.segment_softmax):
            np.testing.assert_allclose(op(src, seg).data, op(src, index, 3).data)


class TestPaddedBatching:
    def test_roundtrip_identity(self):
        rng = np.random.default_rng(0)
        for batch in ([0, 0, 1, 1, 1], [2, 0, 2, 1, 0, 2], [0], [3, 3, 3]):
            index = np.array(batch)
            x = Tensor(rng.normal(size=(len(index), 4)))
            padded, seg = F.to_padded(x, index)
            assert padded.shape == (seg.num_segments, seg.max_count, 4)
            np.testing.assert_allclose(F.from_padded(padded, seg).data, x.data)

    def test_mask_marks_valid_slots(self):
        x = Tensor(np.ones((3, 2)))
        padded, seg = F.to_padded(x, np.array([0, 0, 1]))
        np.testing.assert_array_equal(seg.mask, [[True, True], [True, False]])
        np.testing.assert_allclose(padded.data[~seg.mask], 0.0)

    def test_pad_value(self):
        x = Tensor(np.ones((3, 2)))
        padded, seg = F.to_padded(x, np.array([0, 0, 1]), pad_value=-5.0)
        np.testing.assert_allclose(padded.data[~seg.mask], -5.0)
        np.testing.assert_allclose(padded.data[seg.mask], 1.0)

    def test_interleaved_batch_preserves_row_order(self):
        x = Tensor(np.arange(6, dtype=np.float64).reshape(6, 1))
        padded, seg = F.to_padded(x, np.array([0, 1, 0, 1, 0, 1]))
        np.testing.assert_allclose(padded.data[:, :, 0], [[0, 2, 4], [1, 3, 5]])
        np.testing.assert_allclose(F.from_padded(padded, seg).data, x.data)

    def test_roundtrip_gradients(self):
        x = Tensor(np.random.default_rng(1).normal(size=(5, 3)), requires_grad=True)
        index = np.array([1, 0, 1, 2, 0])
        weights = Tensor(np.random.default_rng(2).normal(size=(5, 3)))

        def loss():
            padded, seg = F.to_padded(x, index)
            return (F.from_padded(padded * 2.0, seg) * weights).sum()

        assert_gradients_close(loss, x)

    def test_row_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.to_padded(Tensor(np.ones((3, 2))), np.array([0, 0]))


class TestPooling:
    def test_mean_pool(self):
        x = Tensor(np.array([[1.0, 1.0], [3.0, 3.0], [10.0, 0.0]]))
        batch = np.array([0, 0, 1])
        out = F.global_mean_pool(x, batch, 2)
        np.testing.assert_allclose(out.data, [[2.0, 2.0], [10.0, 0.0]])

    def test_add_pool(self):
        x = Tensor(np.ones((4, 3)))
        out = F.global_add_pool(x, np.array([0, 0, 1, 1]), 2)
        np.testing.assert_allclose(out.data, 2 * np.ones((2, 3)))

    def test_max_pool(self):
        x = Tensor(np.array([[1.0], [5.0], [2.0], [7.0]]))
        out = F.global_max_pool(x, np.array([0, 0, 1, 1]), 2)
        np.testing.assert_allclose(out.data, [[5.0], [7.0]])

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 5), st.integers(1, 4), st.integers(1, 3))
    def test_mean_pool_of_constant_is_constant(self, graphs, nodes_per_graph, dim):
        x = Tensor(np.full((graphs * nodes_per_graph, dim), 3.5))
        batch = np.repeat(np.arange(graphs), nodes_per_graph)
        out = F.global_mean_pool(x, batch, graphs)
        np.testing.assert_allclose(out.data, np.full((graphs, dim), 3.5))

    def test_dropout_helper_respects_training_flag(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((10, 10)))
        np.testing.assert_allclose(F.dropout(x, 0.5, False, rng).data, x.data)
        assert np.any(F.dropout(x, 0.5, True, rng).data == 0.0)
