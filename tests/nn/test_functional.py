"""Tests for the functional interface (scatter ops, pooling, segment softmax)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn import functional as F

from ..helpers import assert_gradients_close


class TestScatterOps:
    def test_scatter_add_values(self):
        src = Tensor(np.array([[1.0], [2.0], [3.0], [4.0]]))
        out = F.scatter_add(src, np.array([0, 1, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[4.0], [6.0]])

    def test_scatter_mean_values(self):
        src = Tensor(np.array([[2.0], [4.0], [6.0]]))
        out = F.scatter_mean(src, np.array([0, 0, 1]), 3)
        np.testing.assert_allclose(out.data, [[3.0], [6.0], [0.0]])

    def test_scatter_max_values(self):
        src = Tensor(np.array([[1.0], [5.0], [3.0]]))
        out = F.scatter_max(src, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[5.0], [3.0]])

    def test_scatter_mean_empty_bucket_is_zero(self):
        src = Tensor(np.ones((2, 3)))
        out = F.scatter_mean(src, np.array([0, 0]), 4)
        np.testing.assert_allclose(out.data[1:], np.zeros((3, 3)))

    def test_scatter_add_gradients(self):
        src = Tensor(np.random.default_rng(0).normal(size=(5, 2)), requires_grad=True)
        weights = Tensor(np.random.default_rng(1).normal(size=(3, 2)))
        assert_gradients_close(
            lambda: (F.scatter_add(src, np.array([0, 1, 2, 0, 1]), 3) * weights).sum(), src)

    def test_scatter_mean_gradients(self):
        src = Tensor(np.random.default_rng(0).normal(size=(4, 2)), requires_grad=True)
        assert_gradients_close(
            lambda: (F.scatter_mean(src, np.array([0, 0, 1, 1]), 2) ** 2).sum(), src)


class TestSegmentSoftmax:
    def test_sums_to_one_per_segment(self):
        scores = Tensor(np.random.default_rng(0).normal(size=(6, 1)))
        index = np.array([0, 0, 1, 1, 1, 2])
        out = F.segment_softmax(scores, index, 3)
        sums = np.zeros(3)
        np.add.at(sums, index, out.data[:, 0])
        np.testing.assert_allclose(sums, np.ones(3), atol=1e-8)

    def test_stable_with_large_scores(self):
        scores = Tensor(np.array([[1000.0], [1000.0], [999.0]]))
        out = F.segment_softmax(scores, np.array([0, 0, 0]), 1)
        assert np.all(np.isfinite(out.data))

    def test_gradients(self):
        scores = Tensor(np.random.default_rng(0).normal(size=(5, 1)), requires_grad=True)
        index = np.array([0, 0, 1, 1, 1])
        weights = Tensor(np.random.default_rng(1).normal(size=(5, 1)))
        assert_gradients_close(
            lambda: (F.segment_softmax(scores, index, 2) * weights).sum(), scores, atol=1e-4)


class TestPooling:
    def test_mean_pool(self):
        x = Tensor(np.array([[1.0, 1.0], [3.0, 3.0], [10.0, 0.0]]))
        batch = np.array([0, 0, 1])
        out = F.global_mean_pool(x, batch, 2)
        np.testing.assert_allclose(out.data, [[2.0, 2.0], [10.0, 0.0]])

    def test_add_pool(self):
        x = Tensor(np.ones((4, 3)))
        out = F.global_add_pool(x, np.array([0, 0, 1, 1]), 2)
        np.testing.assert_allclose(out.data, 2 * np.ones((2, 3)))

    def test_max_pool(self):
        x = Tensor(np.array([[1.0], [5.0], [2.0], [7.0]]))
        out = F.global_max_pool(x, np.array([0, 0, 1, 1]), 2)
        np.testing.assert_allclose(out.data, [[5.0], [7.0]])

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 5), st.integers(1, 4), st.integers(1, 3))
    def test_mean_pool_of_constant_is_constant(self, graphs, nodes_per_graph, dim):
        x = Tensor(np.full((graphs * nodes_per_graph, dim), 3.5))
        batch = np.repeat(np.arange(graphs), nodes_per_graph)
        out = F.global_mean_pool(x, batch, graphs)
        np.testing.assert_allclose(out.data, np.full((graphs, dim), 3.5))

    def test_dropout_helper_respects_training_flag(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((10, 10)))
        np.testing.assert_allclose(F.dropout(x, 0.5, False, rng).data, x.data)
        assert np.any(F.dropout(x, 0.5, True, rng).data == 0.0)
