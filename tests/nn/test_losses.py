"""Tests for loss functions."""

import numpy as np
import pytest

from repro.nn import Tensor, bce_with_logits, cross_entropy, huber_loss, l1_loss, mse_loss

from ..helpers import assert_gradients_close


class TestBCEWithLogits:
    def test_matches_reference_formula(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=20)
        labels = rng.integers(0, 2, size=20).astype(float)
        expected = np.mean(
            np.maximum(logits, 0) - logits * labels + np.log1p(np.exp(-np.abs(logits)))
        )
        loss = bce_with_logits(Tensor(logits), labels)
        assert loss.item() == pytest.approx(expected, rel=1e-10)

    def test_perfect_predictions_give_small_loss(self):
        logits = np.array([20.0, -20.0, 20.0])
        labels = np.array([1.0, 0.0, 1.0])
        assert bce_with_logits(Tensor(logits), labels).item() < 1e-6

    def test_stable_for_extreme_logits(self):
        logits = np.array([1e4, -1e4])
        labels = np.array([0.0, 1.0])
        loss = bce_with_logits(Tensor(logits), labels)
        assert np.isfinite(loss.item())

    def test_pos_weight_increases_positive_penalty(self):
        logits = np.array([-2.0, -2.0])
        labels = np.array([1.0, 0.0])
        plain = bce_with_logits(Tensor(logits), labels).item()
        weighted = bce_with_logits(Tensor(logits), labels, pos_weight=5.0).item()
        assert weighted > plain

    def test_gradients(self):
        logits = Tensor(np.random.default_rng(0).normal(size=8), requires_grad=True)
        labels = np.random.default_rng(1).integers(0, 2, size=8).astype(float)
        assert_gradients_close(lambda: bce_with_logits(logits, labels), logits)


class TestRegressionLosses:
    def test_mse_value(self):
        assert mse_loss(Tensor([1.0, 2.0]), [0.0, 0.0]).item() == pytest.approx(2.5)

    def test_l1_value(self):
        assert l1_loss(Tensor([1.0, -3.0]), [0.0, 0.0]).item() == pytest.approx(2.0)

    def test_huber_quadratic_region_matches_half_mse(self):
        pred = Tensor([0.3, -0.2])
        target = [0.0, 0.0]
        assert huber_loss(pred, target, delta=1.0).item() == pytest.approx(
            0.5 * mse_loss(pred, target).item())

    def test_huber_linear_region_smaller_than_mse(self):
        pred = Tensor([10.0])
        assert huber_loss(pred, [0.0], delta=1.0).item() < 0.5 * mse_loss(pred, [0.0]).item()

    def test_mse_gradients(self):
        pred = Tensor(np.random.default_rng(0).normal(size=6), requires_grad=True)
        target = np.random.default_rng(1).normal(size=6)
        assert_gradients_close(lambda: mse_loss(pred, target), pred)


class TestCrossEntropy:
    def test_uniform_logits_give_log_k(self):
        logits = Tensor(np.zeros((4, 5)))
        targets = np.array([0, 1, 2, 3])
        assert cross_entropy(logits, targets).item() == pytest.approx(np.log(5))

    def test_confident_correct_prediction_near_zero(self):
        logits = np.full((2, 3), -20.0)
        logits[0, 1] = 20.0
        logits[1, 2] = 20.0
        assert cross_entropy(Tensor(logits), np.array([1, 2])).item() < 1e-6

    def test_gradients(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(4, 3)), requires_grad=True)
        targets = np.array([0, 2, 1, 1])
        assert_gradients_close(lambda: cross_entropy(logits, targets), logits)
