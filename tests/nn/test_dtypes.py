"""Tests for the engine-wide dtype policy (:mod:`repro.nn.dtypes`).

The policy carries the PR-6 float32 serving mode: under the float64 default
the engine is byte-identical to the historical behaviour (explicit float32
arrays pass through), while under a float32 policy *every* float is coerced
at the Tensor-creation boundary — NumPy's NEP-50 rules would otherwise
silently re-promote mixed arithmetic back to float64 and erase the precision
win.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor, as_float, default_dtype, set_default_dtype, use_dtype
from repro.nn.dtypes import FLOAT_DTYPES


def test_default_policy_is_float64():
    assert default_dtype() == np.float64


def test_set_default_dtype_returns_previous_and_validates():
    previous = set_default_dtype(np.float32)
    try:
        assert previous == np.float64
        assert default_dtype() == np.float32
    finally:
        set_default_dtype(previous)
    assert default_dtype() == np.float64
    for bad in (np.int64, np.float16, "int32", complex):
        with pytest.raises(ValueError, match="float32 or float64"):
            set_default_dtype(bad)


def test_use_dtype_restores_on_exit_and_on_error():
    with use_dtype(np.float32) as dtype:
        assert dtype == np.float32
        assert default_dtype() == np.float32
    assert default_dtype() == np.float64
    with pytest.raises(RuntimeError, match="boom"):
        with use_dtype(np.float32):
            raise RuntimeError("boom")
    assert default_dtype() == np.float64


def test_as_float_under_float64_default():
    f64 = np.zeros(3)
    f32 = np.zeros(3, dtype=np.float32)
    assert as_float(f64) is f64                      # no copy in policy dtype
    assert as_float(f32) is f32                      # explicit f32 respected
    assert as_float([1, 2, 3]).dtype == np.float64   # non-arrays -> policy
    assert as_float(np.zeros(3, dtype=np.int32)).dtype == np.float64


def test_as_float_under_float32_policy_coerces_everything():
    with use_dtype(np.float32):
        assert as_float(np.zeros(3)).dtype == np.float32
        f32 = np.zeros(3, dtype=np.float32)
        assert as_float(f32) is f32
        assert as_float([1.5]).dtype == np.float32


def test_as_float_explicit_dtype_overrides_policy():
    assert as_float(np.zeros(3), dtype=np.float32).dtype == np.float32
    with use_dtype(np.float32):
        assert as_float(np.zeros(3), dtype=np.float64).dtype == np.float64


def test_float_dtypes_constant():
    assert np.dtype(np.float64) in FLOAT_DTYPES
    assert np.dtype(np.float32) in FLOAT_DTYPES
    assert len(FLOAT_DTYPES) == 2


def test_tensor_creation_follows_policy():
    assert Tensor(np.zeros(3)).data.dtype == np.float64
    # float64 default: an explicit float32 array stays float32 (legacy)
    assert Tensor(np.zeros(3, dtype=np.float32)).data.dtype == np.float32
    with use_dtype(np.float32):
        assert Tensor(np.zeros(3)).data.dtype == np.float32
        assert Tensor([1.0, 2.0]).data.dtype == np.float32


def test_float32_forward_stays_float32_end_to_end():
    """A full forward chain must not re-promote to float64 (NEP-50 guard)."""
    with use_dtype(np.float32):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 3)), requires_grad=True)
        w = Tensor(np.random.default_rng(1).normal(size=(3, 3)), requires_grad=True)
        out = (x @ w).gelu().sigmoid() * 2.0 + 1.0
        assert out.data.dtype == np.float32
        out.sum().backward()
        assert x.grad.dtype == np.float32
        assert w.grad.dtype == np.float32
