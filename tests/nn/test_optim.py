"""Tests for optimisers, schedulers and gradient clipping."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    AdamW,
    CosineSchedule,
    Parameter,
    StepSchedule,
    Tensor,
    clip_grad_norm,
)


def _quadratic_problem():
    """Minimise ||w - target||^2; optimum is the target vector."""
    target = np.array([1.0, -2.0, 3.0])
    w = Parameter(np.zeros(3))

    def loss_fn():
        diff = w - Tensor(target)
        return (diff * diff).sum()

    return w, target, loss_fn


class TestOptimizers:
    @pytest.mark.parametrize("optimizer_cls,kwargs,steps", [
        (SGD, {"lr": 0.1}, 200),
        (SGD, {"lr": 0.05, "momentum": 0.9}, 200),
        (Adam, {"lr": 0.1}, 300),
        (AdamW, {"lr": 0.1, "weight_decay": 1e-3}, 300),
    ])
    def test_converges_on_quadratic(self, optimizer_cls, kwargs, steps):
        w, target, loss_fn = _quadratic_problem()
        optimizer = optimizer_cls([w], **kwargs)
        for _ in range(steps):
            loss = loss_fn()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(w.data, target, atol=0.05)

    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_step_skips_parameters_without_grad(self):
        w = Parameter(np.ones(3))
        optimizer = Adam([w], lr=0.1)
        optimizer.step()  # no backward performed, grad is None
        np.testing.assert_allclose(w.data, np.ones(3))

    def test_weight_decay_shrinks_weights(self):
        w = Parameter(np.ones(4) * 10)
        optimizer = SGD([w], lr=0.1, weight_decay=0.5)
        loss = (w * 0.0).sum()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        assert np.all(np.abs(w.data) < 10)

    def test_adamw_decouples_decay(self):
        w1 = Parameter(np.ones(3) * 5)
        w2 = Parameter(np.ones(3) * 5)
        adam = Adam([w1], lr=0.01, weight_decay=0.1)
        adamw = AdamW([w2], lr=0.01, weight_decay=0.1)
        for optimizer, w in ((adam, w1), (adamw, w2)):
            loss = (w * w).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        # Both decay, but the updates differ because AdamW applies decay directly.
        assert not np.allclose(w1.data, w2.data)


class TestClipGradNorm:
    def test_norm_reported(self):
        w = Parameter(np.array([3.0, 4.0]))
        w.grad = np.array([3.0, 4.0])
        assert clip_grad_norm([w], max_norm=100.0) == pytest.approx(5.0)
        np.testing.assert_allclose(w.grad, [3.0, 4.0])

    def test_clipping_rescales(self):
        w = Parameter(np.array([3.0, 4.0]))
        w.grad = np.array([3.0, 4.0])
        clip_grad_norm([w], max_norm=1.0)
        assert np.linalg.norm(w.grad) == pytest.approx(1.0, abs=1e-6)

    def test_no_grads_returns_zero(self):
        w = Parameter(np.ones(3))
        assert clip_grad_norm([w], max_norm=1.0) == 0.0


class TestSchedules:
    def test_cosine_decays_to_min_lr(self):
        w = Parameter(np.ones(2))
        optimizer = Adam([w], lr=1.0)
        schedule = CosineSchedule(optimizer, total_steps=10, min_lr=0.1)
        lrs = [schedule.step() for _ in range(10)]
        assert lrs[-1] == pytest.approx(0.1, abs=1e-6)
        assert all(lrs[i] >= lrs[i + 1] for i in range(len(lrs) - 1))

    def test_cosine_warmup_ramps_up(self):
        w = Parameter(np.ones(2))
        optimizer = Adam([w], lr=1.0)
        schedule = CosineSchedule(optimizer, total_steps=20, warmup_steps=5)
        lrs = [schedule.step() for _ in range(5)]
        assert lrs[0] == pytest.approx(0.2)
        assert lrs[-1] == pytest.approx(1.0)

    def test_cosine_requires_positive_steps(self):
        optimizer = Adam([Parameter(np.ones(1))], lr=1.0)
        with pytest.raises(ValueError):
            CosineSchedule(optimizer, total_steps=0)

    def test_step_schedule_halves(self):
        optimizer = Adam([Parameter(np.ones(1))], lr=1.0)
        schedule = StepSchedule(optimizer, step_size=2, gamma=0.5)
        lrs = [schedule.step() for _ in range(4)]
        assert lrs == [1.0, 0.5, 0.5, 0.25]
