"""Tests for optimisers, schedulers and gradient clipping."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    AdamW,
    CosineSchedule,
    Parameter,
    StepSchedule,
    Tensor,
    clip_grad_norm,
)


def _quadratic_problem():
    """Minimise ||w - target||^2; optimum is the target vector."""
    target = np.array([1.0, -2.0, 3.0])
    w = Parameter(np.zeros(3))

    def loss_fn():
        diff = w - Tensor(target)
        return (diff * diff).sum()

    return w, target, loss_fn


class TestOptimizers:
    @pytest.mark.parametrize("optimizer_cls,kwargs,steps", [
        (SGD, {"lr": 0.1}, 200),
        (SGD, {"lr": 0.05, "momentum": 0.9}, 200),
        (Adam, {"lr": 0.1}, 300),
        (AdamW, {"lr": 0.1, "weight_decay": 1e-3}, 300),
    ])
    def test_converges_on_quadratic(self, optimizer_cls, kwargs, steps):
        w, target, loss_fn = _quadratic_problem()
        optimizer = optimizer_cls([w], **kwargs)
        for _ in range(steps):
            loss = loss_fn()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(w.data, target, atol=0.05)

    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_step_skips_parameters_without_grad(self):
        w = Parameter(np.ones(3))
        optimizer = Adam([w], lr=0.1)
        optimizer.step()  # no backward performed, grad is None
        np.testing.assert_allclose(w.data, np.ones(3))

    def test_weight_decay_shrinks_weights(self):
        w = Parameter(np.ones(4) * 10)
        optimizer = SGD([w], lr=0.1, weight_decay=0.5)
        loss = (w * 0.0).sum()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        assert np.all(np.abs(w.data) < 10)

    def test_adamw_decouples_decay(self):
        w1 = Parameter(np.ones(3) * 5)
        w2 = Parameter(np.ones(3) * 5)
        adam = Adam([w1], lr=0.01, weight_decay=0.1)
        adamw = AdamW([w2], lr=0.01, weight_decay=0.1)
        for optimizer, w in ((adam, w1), (adamw, w2)):
            loss = (w * w).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        # Both decay, but the updates differ because AdamW applies decay directly.
        assert not np.allclose(w1.data, w2.data)


class TestAdamWDecoupling:
    def test_weight_decay_attribute_untouched_by_step(self):
        """Regression: the old implementation temporarily zeroed the attribute."""
        w = Parameter(np.ones(2))
        optimizer = AdamW([w], lr=0.1, weight_decay=0.1)
        w.grad = np.ones(2)
        optimizer.step()
        assert optimizer.weight_decay == 0.1

    def test_decay_skips_parameters_without_grad(self):
        with_grad = Parameter(np.ones(2) * 4)
        without_grad = Parameter(np.ones(2) * 4)
        optimizer = AdamW([with_grad, without_grad], lr=0.1, weight_decay=0.5)
        with_grad.grad = np.zeros(2)
        optimizer.step()
        np.testing.assert_allclose(without_grad.data, np.ones(2) * 4)
        np.testing.assert_allclose(with_grad.data, np.ones(2) * 4 * (1 - 0.1 * 0.5))

    def test_decay_never_enters_moments(self):
        """With zero gradients the moments stay zero while weights shrink."""
        w = Parameter(np.ones(3) * 2)
        optimizer = AdamW([w], lr=0.1, weight_decay=0.2)
        for _ in range(3):
            w.grad = np.zeros(3)
            optimizer.step()
        np.testing.assert_allclose(optimizer._m[0], np.zeros(3))
        np.testing.assert_allclose(optimizer._v[0], np.zeros(3))
        np.testing.assert_allclose(w.data, np.ones(3) * 2 * (1 - 0.1 * 0.2) ** 3)


class TestOptimizerState:
    @pytest.mark.parametrize("optimizer_cls,kwargs", [
        (SGD, {"lr": 0.05, "momentum": 0.9}),
        (Adam, {"lr": 0.1}),
        (AdamW, {"lr": 0.1, "weight_decay": 1e-2}),
    ])
    def test_resume_matches_uninterrupted_run(self, optimizer_cls, kwargs):
        """save -> fresh optimizer -> load -> continue == never interrupted."""
        def run(steps, w, optimizer):
            target = Tensor(np.array([1.0, -2.0, 3.0]))
            for _ in range(steps):
                diff = w - target
                loss = (diff * diff).sum()
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()

        w_ref = Parameter(np.zeros(3))
        ref = optimizer_cls([w_ref], **kwargs)
        run(10, w_ref, ref)

        w_resumed = Parameter(np.zeros(3))
        first = optimizer_cls([w_resumed], **kwargs)
        run(6, w_resumed, first)
        state = first.state_dict()

        second = optimizer_cls([w_resumed], **kwargs)
        second.load_state_dict(state)
        run(4, w_resumed, second)
        np.testing.assert_allclose(w_resumed.data, w_ref.data, rtol=1e-12)

    def test_adam_state_dict_contains_moments_and_step(self):
        w = Parameter(np.ones(2))
        optimizer = Adam([w], lr=0.1)
        w.grad = np.ones(2)
        optimizer.step()
        state = optimizer.state_dict()
        assert int(state["t"]) == 1
        assert np.any(state["m.0"] != 0) and np.any(state["v.0"] != 0)

    def test_load_rejects_shape_mismatch(self):
        good = Adam([Parameter(np.ones(2))], lr=0.1)
        other = Adam([Parameter(np.ones(5))], lr=0.1)
        with pytest.raises(ValueError):
            other.load_state_dict(good.state_dict())

    def test_load_rejects_count_mismatch(self):
        pair = Adam([Parameter(np.ones(2)), Parameter(np.ones(2))], lr=0.1)
        single = Adam([Parameter(np.ones(2))], lr=0.1)
        with pytest.raises(ValueError):
            pair.load_state_dict(single.state_dict())

    def test_load_rejects_partial_moment_state(self):
        """m without v (or without t) would blow up the next update."""
        w = Parameter(np.ones(2))
        source = Adam([w], lr=0.1)
        w.grad = np.ones(2)
        source.step()
        full = source.state_dict()
        for missing in ("v.0", "t"):
            partial = {key: value for key, value in full.items() if key != missing}
            target = Adam([Parameter(np.ones(2))], lr=0.1)
            with pytest.raises(ValueError, match="together"):
                target.load_state_dict(partial)
            np.testing.assert_allclose(target._m[0], np.zeros(2))  # untouched

    def test_cosine_schedule_state_roundtrip(self):
        first = Adam([Parameter(np.ones(1))], lr=1.0)
        schedule = CosineSchedule(first, total_steps=10, warmup_steps=2, min_lr=0.1)
        for _ in range(4):
            schedule.step()
        state = schedule.state_dict()

        second = Adam([Parameter(np.ones(1))], lr=1.0)
        resumed = CosineSchedule(second, total_steps=10, warmup_steps=2, min_lr=0.1)
        resumed.load_state_dict(state)
        assert second.lr == pytest.approx(first.lr)
        assert resumed.step() == pytest.approx(schedule.step())

    def test_step_schedule_state_roundtrip(self):
        first = Adam([Parameter(np.ones(1))], lr=1.0)
        schedule = StepSchedule(first, step_size=2, gamma=0.5)
        for _ in range(3):
            schedule.step()
        second = Adam([Parameter(np.ones(1))], lr=1.0)
        resumed = StepSchedule(second, step_size=2, gamma=0.5)
        resumed.load_state_dict(schedule.state_dict())
        assert second.lr == pytest.approx(first.lr)
        assert resumed.step() == pytest.approx(schedule.step())


class TestClipGradNorm:
    def test_norm_reported(self):
        w = Parameter(np.array([3.0, 4.0]))
        w.grad = np.array([3.0, 4.0])
        assert clip_grad_norm([w], max_norm=100.0) == pytest.approx(5.0)
        np.testing.assert_allclose(w.grad, [3.0, 4.0])

    def test_clipping_rescales(self):
        w = Parameter(np.array([3.0, 4.0]))
        w.grad = np.array([3.0, 4.0])
        clip_grad_norm([w], max_norm=1.0)
        assert np.linalg.norm(w.grad) == pytest.approx(1.0, abs=1e-6)

    def test_no_grads_returns_zero(self):
        w = Parameter(np.ones(3))
        assert clip_grad_norm([w], max_norm=1.0) == 0.0


class TestSchedules:
    def test_cosine_decays_to_min_lr(self):
        w = Parameter(np.ones(2))
        optimizer = Adam([w], lr=1.0)
        schedule = CosineSchedule(optimizer, total_steps=10, min_lr=0.1)
        lrs = [schedule.step() for _ in range(10)]
        assert lrs[-1] == pytest.approx(0.1, abs=1e-6)
        assert all(lrs[i] >= lrs[i + 1] for i in range(len(lrs) - 1))

    def test_cosine_warmup_ramps_up(self):
        w = Parameter(np.ones(2))
        optimizer = Adam([w], lr=1.0)
        schedule = CosineSchedule(optimizer, total_steps=20, warmup_steps=5)
        lrs = [schedule.step() for _ in range(5)]
        assert lrs[0] == pytest.approx(0.2)
        assert lrs[-1] == pytest.approx(1.0)

    def test_cosine_requires_positive_steps(self):
        optimizer = Adam([Parameter(np.ones(1))], lr=1.0)
        with pytest.raises(ValueError):
            CosineSchedule(optimizer, total_steps=0)

    def test_step_schedule_halves(self):
        optimizer = Adam([Parameter(np.ones(1))], lr=1.0)
        schedule = StepSchedule(optimizer, step_size=2, gamma=0.5)
        lrs = [schedule.step() for _ in range(4)]
        assert lrs == [1.0, 0.5, 0.5, 0.25]
