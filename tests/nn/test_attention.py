"""Tests for softmax multi-head attention and Performer linear attention."""

import numpy as np
import pytest

from repro.nn import MultiHeadSelfAttention, PerformerAttention, Tensor


def _inputs(num_nodes=10, dim=16, seed=0):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(num_nodes, dim)), requires_grad=True)
    batch = np.array([0] * 4 + [1] * 6)[:num_nodes]
    return x, batch


class TestMultiHeadSelfAttention:
    def test_output_shape(self):
        attn = MultiHeadSelfAttention(16, num_heads=4, rng=0)
        x, batch = _inputs()
        assert attn(x, batch).shape == (10, 16)

    def test_dim_must_divide_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, num_heads=3)

    def test_batch_length_mismatch_raises(self):
        attn = MultiHeadSelfAttention(8, num_heads=2, rng=0)
        with pytest.raises(ValueError):
            attn(Tensor(np.zeros((4, 8))), np.zeros(3, dtype=int))

    def test_no_information_leak_across_graphs(self):
        """Changing nodes of graph 1 must not affect outputs of graph 0."""
        attn = MultiHeadSelfAttention(8, num_heads=2, rng=0)
        attn.eval()
        rng = np.random.default_rng(0)
        base = rng.normal(size=(8, 8))
        batch = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        out_a = attn(Tensor(base), batch).data
        modified = base.copy()
        modified[4:] += 5.0
        out_b = attn(Tensor(modified), batch).data
        np.testing.assert_allclose(out_a[:4], out_b[:4], atol=1e-10)
        assert not np.allclose(out_a[4:], out_b[4:])

    def test_permutation_equivariance_within_graph(self):
        attn = MultiHeadSelfAttention(8, num_heads=2, rng=0)
        attn.eval()
        rng = np.random.default_rng(1)
        x = rng.normal(size=(5, 8))
        batch = np.zeros(5, dtype=int)
        out = attn(Tensor(x), batch).data
        perm = np.array([2, 0, 4, 1, 3])
        out_perm = attn(Tensor(x[perm]), batch).data
        np.testing.assert_allclose(out[perm], out_perm, atol=1e-8)

    def test_gradients_flow(self):
        attn = MultiHeadSelfAttention(8, num_heads=2, rng=0)
        x, batch = _inputs(num_nodes=6, dim=8)
        loss = (attn(x, batch) ** 2).sum()
        loss.backward()
        assert x.grad is not None
        assert np.any(attn.q_proj.weight.grad != 0)


class TestPerformerAttention:
    def test_output_shape(self):
        attn = PerformerAttention(16, num_heads=4, num_features=8, rng=0)
        x, batch = _inputs()
        assert attn(x, batch).shape == (10, 16)

    def test_no_information_leak_across_graphs(self):
        attn = PerformerAttention(8, num_heads=2, num_features=8, rng=0)
        attn.eval()
        rng = np.random.default_rng(0)
        base = rng.normal(size=(8, 8))
        batch = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        out_a = attn(Tensor(base), batch).data
        modified = base.copy()
        modified[4:] += 5.0
        out_b = attn(Tensor(modified), batch).data
        np.testing.assert_allclose(out_a[:4], out_b[:4], atol=1e-10)

    def test_positive_feature_map(self):
        attn = PerformerAttention(8, num_heads=2, num_features=8, rng=0)
        x = Tensor(np.random.default_rng(0).normal(size=(5, 4)))
        features = attn._feature_map(x, head=0)
        assert np.all(features.data > 0)

    def test_approximates_softmax_attention_direction(self):
        """Performer output should correlate with exact attention output."""
        dim = 8
        rng = np.random.default_rng(0)
        x = rng.normal(size=(12, dim))
        batch = np.zeros(12, dtype=int)
        exact = MultiHeadSelfAttention(dim, num_heads=1, rng=1)
        approx = PerformerAttention(dim, num_heads=1, num_features=64, rng=1)
        # Share the projection weights so only the attention kernel differs.
        approx.load_state_dict(
            {k: v for k, v in exact.state_dict().items() if k in dict(approx.named_parameters())},
            strict=False,
        )
        exact.eval()
        approx.eval()
        out_exact = exact(Tensor(x), batch).data.ravel()
        out_approx = approx(Tensor(x), batch).data.ravel()
        corr = np.corrcoef(out_exact, out_approx)[0, 1]
        assert corr > 0.5

    def test_gradients_flow(self):
        attn = PerformerAttention(8, num_heads=2, num_features=8, rng=0)
        x, batch = _inputs(num_nodes=6, dim=8)
        loss = (attn(x, batch) ** 2).sum()
        loss.backward()
        assert x.grad is not None
