"""Tests for softmax multi-head attention and Performer linear attention."""

import numpy as np
import pytest

from repro.nn import MultiHeadSelfAttention, PerformerAttention, Tensor, segment_info
from repro.nn.legacy import loop_multihead_attention, loop_performer_attention


def _inputs(num_nodes=10, dim=16, seed=0):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(num_nodes, dim)), requires_grad=True)
    batch = np.array([0] * 4 + [1] * 6)[:num_nodes]
    return x, batch


class TestMultiHeadSelfAttention:
    def test_output_shape(self):
        attn = MultiHeadSelfAttention(16, num_heads=4, rng=0)
        x, batch = _inputs()
        assert attn(x, batch).shape == (10, 16)

    def test_dim_must_divide_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, num_heads=3)

    def test_batch_length_mismatch_raises(self):
        attn = MultiHeadSelfAttention(8, num_heads=2, rng=0)
        with pytest.raises(ValueError):
            attn(Tensor(np.zeros((4, 8))), np.zeros(3, dtype=int))

    def test_no_information_leak_across_graphs(self):
        """Changing nodes of graph 1 must not affect outputs of graph 0."""
        attn = MultiHeadSelfAttention(8, num_heads=2, rng=0)
        attn.eval()
        rng = np.random.default_rng(0)
        base = rng.normal(size=(8, 8))
        batch = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        out_a = attn(Tensor(base), batch).data
        modified = base.copy()
        modified[4:] += 5.0
        out_b = attn(Tensor(modified), batch).data
        np.testing.assert_allclose(out_a[:4], out_b[:4], atol=1e-10)
        assert not np.allclose(out_a[4:], out_b[4:])

    def test_permutation_equivariance_within_graph(self):
        attn = MultiHeadSelfAttention(8, num_heads=2, rng=0)
        attn.eval()
        rng = np.random.default_rng(1)
        x = rng.normal(size=(5, 8))
        batch = np.zeros(5, dtype=int)
        out = attn(Tensor(x), batch).data
        perm = np.array([2, 0, 4, 1, 3])
        out_perm = attn(Tensor(x[perm]), batch).data
        np.testing.assert_allclose(out[perm], out_perm, atol=1e-8)

    def test_gradients_flow(self):
        attn = MultiHeadSelfAttention(8, num_heads=2, rng=0)
        x, batch = _inputs(num_nodes=6, dim=8)
        loss = (attn(x, batch) ** 2).sum()
        loss.backward()
        assert x.grad is not None
        assert np.any(attn.q_proj.weight.grad != 0)


class TestPerformerAttention:
    def test_output_shape(self):
        attn = PerformerAttention(16, num_heads=4, num_features=8, rng=0)
        x, batch = _inputs()
        assert attn(x, batch).shape == (10, 16)

    def test_no_information_leak_across_graphs(self):
        attn = PerformerAttention(8, num_heads=2, num_features=8, rng=0)
        attn.eval()
        rng = np.random.default_rng(0)
        base = rng.normal(size=(8, 8))
        batch = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        out_a = attn(Tensor(base), batch).data
        modified = base.copy()
        modified[4:] += 5.0
        out_b = attn(Tensor(modified), batch).data
        np.testing.assert_allclose(out_a[:4], out_b[:4], atol=1e-10)

    def test_positive_feature_map(self):
        attn = PerformerAttention(8, num_heads=2, num_features=8, rng=0)
        x = Tensor(np.random.default_rng(0).normal(size=(5, 4)))
        features = attn._feature_map(x, head=0)
        assert np.all(features.data > 0)

    def test_approximates_softmax_attention_direction(self):
        """Performer output should correlate with exact attention output."""
        dim = 8
        rng = np.random.default_rng(0)
        x = rng.normal(size=(12, dim))
        batch = np.zeros(12, dtype=int)
        exact = MultiHeadSelfAttention(dim, num_heads=1, rng=1)
        approx = PerformerAttention(dim, num_heads=1, num_features=64, rng=1)
        # Share the projection weights so only the attention kernel differs.
        approx.load_state_dict(
            {k: v for k, v in exact.state_dict().items() if k in dict(approx.named_parameters())},
            strict=False,
        )
        exact.eval()
        approx.eval()
        out_exact = exact(Tensor(x), batch).data.ravel()
        out_approx = approx(Tensor(x), batch).data.ravel()
        corr = np.corrcoef(out_exact, out_approx)[0, 1]
        assert corr > 0.5

    def test_gradients_flow(self):
        attn = PerformerAttention(8, num_heads=2, num_features=8, rng=0)
        x, batch = _inputs(num_nodes=6, dim=8)
        loss = (attn(x, batch) ** 2).sum()
        loss.backward()
        assert x.grad is not None

    def test_projection_persists_in_state_dict(self):
        """Regression: reloading a saved Performer must not redraw the random
        features — the kernel approximation is defined by them."""
        saved = PerformerAttention(8, num_heads=2, num_features=8, rng=0)
        restored = PerformerAttention(8, num_heads=2, num_features=8, rng=123)
        assert not np.array_equal(saved.projection, restored.projection)
        restored.load_state_dict(saved.state_dict())
        np.testing.assert_array_equal(restored.projection, saved.projection)
        saved.eval()
        restored.eval()
        x = Tensor(np.random.default_rng(0).normal(size=(6, 8)))
        batch = np.array([0, 0, 0, 1, 1, 1])
        np.testing.assert_allclose(restored(x, batch).data, saved(x, batch).data)

    def test_feature_map_finite_on_large_inputs(self):
        """Regression: the FAVOR+ stabilizer keeps exp() from overflowing."""
        attn = PerformerAttention(8, num_heads=2, num_features=8, rng=0)
        huge = Tensor(np.random.default_rng(0).normal(size=(5, 4)) * 1e3)
        features = attn._feature_map(huge, head=0)
        assert np.all(np.isfinite(features.data))
        assert np.all(features.data > 0)

    def test_forward_finite_on_large_inputs(self):
        """Pre-stabilizer the forward produced inf/nan on large activations."""
        attn = PerformerAttention(8, num_heads=2, num_features=8, rng=0)
        attn.eval()
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(10, 8)) * 100.0)
        batch = np.array([0] * 5 + [1] * 5)
        out = attn(x, batch)
        assert np.all(np.isfinite(out.data))

    def test_stabilizer_preserves_small_input_behaviour(self):
        """On small inputs the stabilized features match the legacy map."""
        attn = PerformerAttention(8, num_heads=2, num_features=8, rng=0)
        attn.eval()
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(9, 8)))
        batch = np.array([0] * 4 + [1] * 5)
        out = attn(x, batch).data

        # Legacy (pre-PR-4, unstabilized) per-graph x per-head forward.
        def legacy_feature_map(values, head):
            projected = values @ attn.projection[head]
            sq_norm = (values * values).sum(axis=-1, keepdims=True) * 0.5
            return np.exp(projected - sq_norm) / np.sqrt(attn.num_features) + 1e-6

        q = attn.q_proj(x).data
        k = attn.k_proj(x).data
        v = attn.v_proj(x).data
        scale = 1.0 / np.sqrt(np.sqrt(attn.head_dim))
        rows = []
        for graph_id in np.unique(batch):
            idx = np.nonzero(batch == graph_id)[0]
            head_outputs = []
            for head in range(attn.num_heads):
                cols = slice(head * attn.head_dim, (head + 1) * attn.head_dim)
                q_feat = legacy_feature_map(q[idx][:, cols] * scale, head)
                k_feat = legacy_feature_map(k[idx][:, cols] * scale, head)
                kv = k_feat.T @ v[idx][:, cols]
                denominator = q_feat @ k_feat.sum(axis=0)[:, None] + 1e-8
                head_outputs.append((q_feat @ kv) / denominator)
            rows.append(np.concatenate(head_outputs, axis=1))
        legacy = np.concatenate(rows, axis=0) @ attn.out_proj.weight.data
        legacy = legacy + attn.out_proj.bias.data
        # The stabilizer shift cancels exactly in the attention ratio except
        # through the 1e-6 positivity epsilon of the feature map, which does
        # not rescale with it — deviations stay at the epsilon level.
        np.testing.assert_allclose(out, legacy, rtol=5e-3, atol=1e-4)


PARITY_BATCHES = {
    "single_graph": np.zeros(7, dtype=np.int64),
    "ragged_sizes": np.array([0] * 1 + [1] * 9 + [2] * 4 + [3] * 2),
    "non_contiguous_ids": np.array([7, 3, 7, 3, 3, 11, 7, 11]),
    "interleaved_order": np.array([0, 1, 2, 0, 1, 2, 0, 1]),
}


class TestLoopParity:
    """The vectorized modules must match the per-graph loop oracles ≤ 1e-8."""

    @pytest.mark.parametrize("name", sorted(PARITY_BATCHES))
    def test_multihead_matches_loop(self, name):
        batch = PARITY_BATCHES[name]
        attn = MultiHeadSelfAttention(16, num_heads=4, rng=0)
        attn.eval()
        x = Tensor(np.random.default_rng(3).normal(size=(len(batch), 16)))
        vectorized = attn(x, batch).data
        looped = loop_multihead_attention(attn, x, batch).data
        np.testing.assert_allclose(vectorized, looped, atol=1e-8, rtol=1e-8)

    @pytest.mark.parametrize("name", sorted(PARITY_BATCHES))
    def test_performer_matches_loop(self, name):
        batch = PARITY_BATCHES[name]
        attn = PerformerAttention(16, num_heads=4, num_features=8, rng=0)
        attn.eval()
        x = Tensor(np.random.default_rng(4).normal(size=(len(batch), 16)))
        vectorized = attn(x, batch).data
        looped = loop_performer_attention(attn, x, batch).data
        np.testing.assert_allclose(vectorized, looped, atol=1e-8, rtol=1e-8)

    def test_multihead_gradient_matches_loop(self):
        batch = np.array([0] * 3 + [1] * 5)
        attn = MultiHeadSelfAttention(16, num_heads=2, rng=0)
        attn.eval()
        rng = np.random.default_rng(5)
        x = Tensor(rng.normal(size=(8, 16)), requires_grad=True)
        (attn(x, batch) ** 2).sum().backward()
        vectorized = x.grad.copy()
        x.grad = None
        (loop_multihead_attention(attn, x, batch) ** 2).sum().backward()
        np.testing.assert_allclose(vectorized, x.grad, atol=1e-8, rtol=1e-8)

    def test_performer_gradient_matches_loop(self):
        batch = np.array([0] * 3 + [1] * 5)
        attn = PerformerAttention(16, num_heads=2, num_features=8, rng=0)
        attn.eval()
        rng = np.random.default_rng(6)
        x = Tensor(rng.normal(size=(8, 16)), requires_grad=True)
        (attn(x, batch) ** 2).sum().backward()
        vectorized = x.grad.copy()
        x.grad = None
        (loop_performer_attention(attn, x, batch) ** 2).sum().backward()
        np.testing.assert_allclose(vectorized, x.grad, atol=1e-8, rtol=1e-8)

    def test_accepts_precomputed_segment_info(self):
        batch = np.array([0, 0, 1, 1, 1])
        seg = segment_info(batch)
        x = Tensor(np.random.default_rng(7).normal(size=(5, 8)))
        for attn in (MultiHeadSelfAttention(8, num_heads=2, rng=0),
                     PerformerAttention(8, num_heads=2, num_features=8, rng=0)):
            attn.eval()
            np.testing.assert_allclose(attn(x, seg).data, attn(x, batch).data)
