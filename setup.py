"""Setuptools shim.

The primary build configuration lives in ``pyproject.toml``.  This file exists
so the package can be installed in editable mode on fully offline machines
(no ``wheel`` package, no build isolation) via the legacy
``pip install -e . --no-use-pep517 --no-build-isolation`` path.
"""

from setuptools import setup

setup()
