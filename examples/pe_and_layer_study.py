"""Mini ablation study: positional encodings and GPS layer configurations.

Reproduces, at demo scale, the two ablations behind the paper's key insights:

* **Observation 1** — feeding the circuit-statistics matrix ``X_C`` to the
  trunk as a positional encoding hurts link-prediction generalisation, while
  the cheap DSPD encoding helps (Table II).
* **Observation 2** — a classic MPNN (GatedGCN) is competitive with, and much
  cheaper than, hybrid MPNN+Transformer layers (Table III).

Run with::

    python examples/pe_and_layer_study.py
"""

from __future__ import annotations

import time

from repro.analysis import print_table
from repro.core import ExperimentConfig, Trainer, load_design_suite, pretrain_link_model
from repro.core.datasets import build_link_samples
from repro.utils import seed_all


def pe_study(config, train_design, test_design) -> None:
    rows = []
    for pe_kind in ("none", "stats", "dspd"):
        result = pretrain_link_model([train_design], config, pe_kind=pe_kind)
        samples = build_link_samples(test_design, config.data, pe_kind=pe_kind, rng=1)
        metrics = Trainer(result.model, task="link", config=config.train).evaluate(samples)
        rows.append({"pe": pe_kind, **{k: metrics[k] for k in ("accuracy", "f1", "auc")}})
    print_table(rows, title="Positional encodings (zero-shot link prediction)")


def layer_study(config, train_design, test_design) -> None:
    rows = []
    samples = build_link_samples(test_design, config.data, pe_kind=config.model.pe_kind, rng=1)
    for mpnn, attention in (("gatedgcn", "none"), ("gatedgcn", "transformer"),
                            ("none", "transformer")):
        variant = config.with_model(mpnn=mpnn, attention=attention)
        start = time.perf_counter()
        result = pretrain_link_model([train_design], variant)
        elapsed = time.perf_counter() - start
        metrics = Trainer(result.model, task="link", config=variant.train).evaluate(samples)
        rows.append({
            "mpnn": mpnn,
            "attention": attention,
            "accuracy": metrics["accuracy"],
            "auc": metrics["auc"],
            "train_time_s": elapsed,
            "params": result.model.num_parameters(),
        })
    print_table(rows, title="GPS layer configurations (zero-shot link prediction)")


def main() -> None:
    seed_all(3)
    config = (
        ExperimentConfig.fast()
        .with_train(epochs=5)
        .with_data(max_links_per_design=120)
    )
    suite = load_design_suite(scale=config.data.scale, seed=config.data.seed,
                              names=["SSRAM", "DIGITAL_CLK_GEN"])
    train_design, test_design = suite["SSRAM"], suite["DIGITAL_CLK_GEN"]

    print("Training on SSRAM, evaluating zero-shot on DIGITAL_CLK_GEN.\n")
    pe_study(config, train_design, test_design)
    print()
    layer_study(config, train_design, test_design)


if __name__ == "__main__":
    main()
