"""Quickstart: pre-train CircuitGPS, fine-tune it and evaluate zero-shot.

This example runs the full paper workflow on small synthetic designs:

1. generate the design suite (SRAM macros, clock generator, control logic),
2. pre-train the meta-learner on link prediction over the training designs,
3. fine-tune all parameters for coupling-capacitance regression,
4. evaluate zero-shot on an unseen design and save the full pipeline as one
   serving artifact (config + backbone + fine-tuned head + normaliser).

Run with::

    python examples/quickstart.py

The same workflow is available from the shell::

    python -m repro train --config fast --out ckpt/
    python -m repro annotate ckpt/ your_netlist.sp
"""

from __future__ import annotations

import pathlib

from repro.analysis import print_table
from repro.core import CircuitGPSPipeline, ExperimentConfig
from repro.utils import seed_all


def main() -> None:
    seed_all(7)
    config = ExperimentConfig.fast()
    pipeline = CircuitGPSPipeline(config)

    print("Building the synthetic design suite (Table IV archetypes)...")
    designs = pipeline.load_designs()
    print_table(
        [design.graph.summary() | {"split": design.split} for design in designs.values()],
        columns=["name", "split", "num_nodes", "num_edges", "num_links"],
        title="Design suite",
    )

    print("\nPre-training the meta-learner on link prediction...")
    pretrain = pipeline.pretrain()
    print("validation metrics:", {k: round(v, 3) for k, v in pretrain.val_metrics.items()})

    print("\nFine-tuning all parameters for coupling-capacitance regression...")
    pipeline.finetune(mode="all")

    print("\nZero-shot evaluation on the unseen DIGITAL_CLK_GEN design:")
    link_metrics = pipeline.evaluate_link("DIGITAL_CLK_GEN")
    regression_metrics = pipeline.evaluate_regression("DIGITAL_CLK_GEN", mode="all")
    print_table(
        [
            {"task": "link prediction", **{k: link_metrics[k] for k in ("accuracy", "f1", "auc")}},
            {"task": "edge regression",
             **{k: regression_metrics[k] for k in ("mae", "rmse", "r2")}},
        ],
        title="Zero-shot results",
    )

    artifact = pipeline.save(pathlib.Path("ckpt"))
    print(f"\nSaved the full pipeline artifact to {artifact.resolve()}")
    print("Annotate any SPICE netlist against it with:")
    print("  python -m repro annotate ckpt/ your_netlist.sp")


if __name__ == "__main__":
    main()
