"""Node-level ground-capacitance prediction and switching-energy validation.

Covers the last two experiments of the paper at demo scale:

* node regression (Section IV-D): predict the ground parasitic capacitance of
  every net/pin from a 2-hop subgraph around the node, and
* the Fig. 4 validation: recompute each test design's switching energy with
  the predicted capacitances and compare it against the ground truth.

Run with::

    python examples/ground_cap_and_energy.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import design_energy, energy_comparison, print_table
from repro.core import (
    ExperimentConfig,
    Trainer,
    evaluate_regression,
    finetune_regression,
    load_design_suite,
)
from repro.core.datasets import build_edge_regression_samples
from repro.graph import NODE_NET
from repro.utils import seed_all


def main() -> None:
    seed_all(5)
    config = ExperimentConfig.fast()
    suite = load_design_suite(scale=config.data.scale, seed=config.data.seed)
    train_designs = [d for d in suite.values() if d.split == "train"]
    test_designs = [d for d in suite.values() if d.split == "test"]

    # ------------------------------------------------------------------ #
    # Node regression: ground capacitance per net/pin.
    # ------------------------------------------------------------------ #
    print("Training CircuitGPS for node regression (ground capacitance)...")
    node_model = finetune_regression(train_designs, mode="scratch", task="node_regression",
                                     config=config)
    rows = []
    for design in test_designs:
        metrics = evaluate_regression(node_model, design, task="node_regression", config=config)
        rows.append({"design": design.name, **{k: metrics[k] for k in ("mae", "rmse", "r2")}})
    print_table(rows, title="Node regression, zero-shot on the test designs")

    # ------------------------------------------------------------------ #
    # Edge regression + energy validation (Fig. 4).
    # ------------------------------------------------------------------ #
    print("\nTraining CircuitGPS for coupling-capacitance regression...")
    edge_model = finetune_regression(train_designs, mode="scratch", task="edge_regression",
                                     config=config)
    trainer = Trainer(edge_model.model, task="edge_regression", config=config.train)

    energy_rows = []
    for design in test_designs:
        samples = build_edge_regression_samples(design, config.data, include_negatives=False,
                                                normalizer=edge_model.normalizer, rng=2)
        predictions = trainer.predict(samples)
        override = {}
        graph = design.graph
        for sample, predicted in zip(samples, predictions):
            source, target = sample.node_ids[0], sample.node_ids[1]
            kind_a = "net" if graph.node_types[source] == NODE_NET else "pin"
            kind_b = "net" if graph.node_types[target] == NODE_NET else "pin"
            key = tuple(sorted(((kind_a, graph.node_names[source]),
                                (kind_b, graph.node_names[target]))))
            override[key] = edge_model.normalizer.denormalize(float(predicted))
        comparison = energy_comparison(design, override)
        energy_rows.append({
            "design": design.name,
            "energy_true_pJ": comparison["energy_true_j"] * 1e12,
            "energy_pred_pJ": comparison["energy_pred_j"] * 1e12,
            "ape": comparison["ape"],
        })
    print()
    print_table(energy_rows, title="Switching energy: ground truth vs. predicted couplings")
    mape = float(np.mean([row["ape"] for row in energy_rows]))
    print(f"\nMean absolute percentage error across test designs: {mape * 100:.1f}% "
          f"(paper reports 14.5%)")
    total = sum(design_energy(d) for d in test_designs)
    print(f"Total ground-truth switching energy of the test designs: {total * 1e12:.3f} pJ")


if __name__ == "__main__":
    main()
