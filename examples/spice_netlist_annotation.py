"""Annotate a SPICE netlist with predicted coupling capacitances.

This is the downstream use-case motivating the paper: a designer has a
*schematic* netlist (no layout yet) and wants early estimates of which node
pairs will couple after layout and how large the coupling capacitance will be,
so pre-layout simulation matches post-layout behaviour more closely.

The script:

1. writes a small SRAM-macro SPICE netlist to disk and parses it back
   (exactly what you would do with your own ``.sp``/``.cdl`` file),
2. trains the CircuitGPS pipeline on the synthetic training suite,
3. predicts coupling probability and capacitance for candidate node pairs of
   the parsed netlist (neighbouring bit-lines, clock nets, sense-amp pins),
4. prints the annotations and writes them to a CSV-like report.

Run with::

    python examples/spice_netlist_annotation.py
"""

from __future__ import annotations

import pathlib

from repro.analysis import print_table
from repro.core import CircuitGPSPipeline, ExperimentConfig
from repro.netlist import parse_spice_file, ssram, write_spice
from repro.utils import seed_all


def prepare_netlist(path: pathlib.Path) -> None:
    """Write the example schematic netlist (stand-in for a user's own file)."""
    design = ssram(rows=8, cols=4)
    design.name = "USER_SRAM_MACRO"
    path.write_text(write_spice(design))


def candidate_pairs(cols: int = 4) -> list[tuple[str, str]]:
    """Node pairs a designer would care about: adjacent bit-lines and clock nets."""
    pairs = []
    for col in range(cols - 1):
        pairs.append((f"BL{col}", f"BL{col + 1}"))        # neighbouring columns
        pairs.append((f"BL{col}", f"BLB{col}"))           # true/complement bit-lines
    pairs.append(("clk_int", "SAE"))                      # clock to sense-amp enable
    pairs.append(("PCHB", "WL0"))                         # precharge to word-line
    return pairs


def main() -> None:
    seed_all(11)
    netlist_path = pathlib.Path("user_sram_macro.sp")
    prepare_netlist(netlist_path)
    print(f"Wrote example schematic netlist to {netlist_path.resolve()}")

    circuit = parse_spice_file(netlist_path)
    flat = circuit.flatten()
    print(f"Parsed netlist: {len(flat.devices)} devices, {len(flat.nets)} nets")

    config = ExperimentConfig.fast()
    pipeline = CircuitGPSPipeline(config)
    pipeline.load_designs()
    print("Pre-training + fine-tuning CircuitGPS (this takes a minute or two)...")
    pipeline.pretrain()
    pipeline.finetune(mode="all")

    records = pipeline.predict_couplings(flat, candidate_pairs())
    rows = [
        {
            "node_a": record["pair"][0],
            "node_b": record["pair"][1],
            "coupling_probability": record["coupling_probability"],
            "capacitance_fF": record["capacitance_farad"] * 1e15,
        }
        for record in records
    ]
    print()
    print_table(rows, title="Predicted coupling annotations for USER_SRAM_MACRO")

    report = pathlib.Path("coupling_annotations.csv")
    lines = ["node_a,node_b,coupling_probability,capacitance_farad"]
    lines += [
        f"{r['node_a']},{r['node_b']},{r['coupling_probability']:.4f},{r['capacitance_fF'] / 1e15:.6e}"
        for r in rows
    ]
    report.write_text("\n".join(lines) + "\n")
    print(f"\nWrote annotations to {report.resolve()}")


if __name__ == "__main__":
    main()
