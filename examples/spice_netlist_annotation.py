"""Annotate a SPICE netlist with predicted coupling capacitances.

This is the downstream use-case motivating the paper: a designer has a
*schematic* netlist (no layout yet) and wants early estimates of which node
pairs will couple after layout and how large the coupling capacitance will be,
so pre-layout simulation matches post-layout behaviour more closely.

The script exercises the train-once / serve-many flow:

1. writes a small SRAM-macro SPICE netlist to disk and parses it back
   (exactly what you would do with your own ``.sp``/``.cdl`` file),
2. trains the CircuitGPS pipeline on the synthetic training suite and saves
   it as one serving artifact (``ckpt/pipeline.npz``),
3. reloads the artifact into a fresh pipeline — no retraining — and runs the
   batched :class:`~repro.core.serve.AnnotationEngine` over candidate node
   pairs (neighbouring bit-lines, clock nets) plus auto-generated candidates,
4. prints the annotations, writes a structured JSON report and an annotated
   netlist with the predicted couplings appended as capacitor cards.

Run with::

    python examples/spice_netlist_annotation.py

or do the same from the shell::

    python -m repro train --config fast --out ckpt/
    python -m repro annotate ckpt/ user_sram_macro.sp --json report.json
"""

from __future__ import annotations

import pathlib

from repro.analysis import print_table
from repro.core import AnnotationEngine, CircuitGPSPipeline, ExperimentConfig
from repro.netlist import ssram, write_spice
from repro.utils import seed_all


def prepare_netlist(path: pathlib.Path) -> None:
    """Write the example schematic netlist (stand-in for a user's own file)."""
    design = ssram(rows=8, cols=4)
    design.name = "USER_SRAM_MACRO"
    path.write_text(write_spice(design))


def candidate_pairs(cols: int = 4) -> list[tuple[str, str]]:
    """Node pairs a designer would care about: adjacent bit-lines and clock nets."""
    pairs = []
    for col in range(cols - 1):
        pairs.append((f"BL{col}", f"BL{col + 1}"))        # neighbouring columns
        pairs.append((f"BL{col}", f"BLB{col}"))           # true/complement bit-lines
    pairs.append(("clk_int", "SAE"))                      # clock to sense-amp enable
    pairs.append(("PCHB", "WL0"))                         # precharge to word-line
    return pairs


def main() -> None:
    seed_all(11)
    netlist_path = pathlib.Path("user_sram_macro.sp")
    prepare_netlist(netlist_path)
    print(f"Wrote example schematic netlist to {netlist_path.resolve()}")

    artifact = pathlib.Path("ckpt")
    print("Training CircuitGPS and saving the serving artifact "
          "(this takes a minute or two)...")
    pipeline = CircuitGPSPipeline(ExperimentConfig.fast())
    pipeline.load_designs()
    pipeline.pretrain()
    pipeline.finetune(mode="all")
    pipeline.save(artifact)

    # Serving: a fresh pipeline object, models restored from the artifact.
    served = CircuitGPSPipeline.from_checkpoint(artifact)
    engine = AnnotationEngine(served, batch_size=256)
    annotation = engine.annotate(netlist_path, pairs=candidate_pairs())

    rows = [
        {
            "node_a": record["pair"][0],
            "node_b": record["pair"][1],
            "coupling_probability": record["coupling_probability"],
            "capacitance_fF": record["capacitance_farad"] * 1e15,
        }
        for record in annotation.records
    ]
    print()
    print_table(rows, title="Predicted coupling annotations for USER_SRAM_MACRO")

    report = annotation.write_json(pathlib.Path("coupling_annotations.json"))
    annotated = pathlib.Path("user_sram_macro.annotated.sp")
    annotated.write_text(annotation.annotated_spice())
    print(f"\nWrote the structured report to {report.resolve()}")
    print(f"Wrote the annotated netlist to {annotated.resolve()}")


if __name__ == "__main__":
    main()
